#include <gtest/gtest.h>

#include <limits>

#include "congest/primitives.hpp"
#include "decomp/segments.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/mst_seq.hpp"
#include "mst/distributed_mst.hpp"
#include "support/rng.hpp"
#include "tap/distributed_tap.hpp"

namespace deck {
namespace {

struct Pipeline {
  Graph g;
  Network net;
  RootedTree bfs;
  MstResult mst;
  CommForest bfs_forest;

  explicit Pipeline(Graph graph) : g(std::move(graph)), net(g) {
    bfs = distributed_bfs(net, 0);
    mst = distributed_mst(net, bfs);
    bfs_forest = CommForest::from_tree(bfs);
  }
};

/// Sequential ground truth: cheapest non-tree edge covering each tree edge.
std::vector<EdgeId> brute_replacements(const Graph& g, const RootedTree& tree) {
  std::vector<char> is_tree(static_cast<std::size_t>(g.num_edges()), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (tree.parent_edge(v) != kNoEdge) is_tree[static_cast<std::size_t>(tree.parent_edge(v))] = 1;
  std::vector<EdgeId> best(static_cast<std::size_t>(g.num_edges()), kNoEdge);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (is_tree[static_cast<std::size_t>(e)]) continue;
    for (EdgeId t : tree.path_edges(g.edge(e).u, g.edge(e).v)) {
      EdgeId& b = best[static_cast<std::size_t>(t)];
      if (b == kNoEdge || g.edge(e).w < g.edge(b).w ||
          (g.edge(e).w == g.edge(b).w && e < b))
        b = e;
    }
  }
  return best;
}

TEST(FtMst, ReplacementsMatchBruteForceOnRandomGraphs) {
  for (int seed = 1; seed <= 6; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 71);
    Pipeline p(with_weights(random_kec(40 + seed * 13, 2, 60, rng), WeightModel::kUniform, rng));
    SegmentDecomposition dec(p.net, p.mst.tree, p.mst.fragment, p.mst.global_edges,
                             p.bfs_forest, 0);
    const auto got = mst_replacement_edges(p.net, dec, p.bfs_forest, 0);
    const auto expect = brute_replacements(p.g, p.mst.tree);
    for (EdgeId t = 0; t < p.g.num_edges(); ++t) {
      if (expect[static_cast<std::size_t>(t)] == kNoEdge) continue;
      const EdgeId ge = got[static_cast<std::size_t>(t)];
      const EdgeId be = expect[static_cast<std::size_t>(t)];
      ASSERT_NE(ge, kNoEdge) << "seed " << seed << " tree edge " << t;
      // Same weight (the winner key is (w, id); ties may resolve by id).
      EXPECT_EQ(p.g.edge(ge).w, p.g.edge(be).w) << "seed " << seed << " tree edge " << t;
    }
  }
}

TEST(FtMst, SwapRestoresSpanningTree) {
  Rng rng(9);
  Pipeline p(with_weights(random_kec(30, 2, 40, rng), WeightModel::kUniform, rng));
  SegmentDecomposition dec(p.net, p.mst.tree, p.mst.fragment, p.mst.global_edges, p.bfs_forest, 0);
  const auto rep = mst_replacement_edges(p.net, dec, p.bfs_forest, 0);
  for (EdgeId t : p.mst.mst_edges) {
    const EdgeId r = rep[static_cast<std::size_t>(t)];
    ASSERT_NE(r, kNoEdge);  // 2-edge-connected: every tree edge is covered
    // MST minus t plus r spans and connects.
    std::vector<EdgeId> swapped;
    for (EdgeId e : p.mst.mst_edges)
      if (e != t) swapped.push_back(e);
    swapped.push_back(r);
    EXPECT_TRUE(is_k_edge_connected_subset(p.g, swapped, 1)) << "tree edge " << t;
  }
}

TEST(FtMst, SwapIsOptimalReplacement) {
  // The min-weight covering edge gives the MST of G \ {t}: check total
  // weight against a direct Kruskal on the faulted graph.
  Rng rng(13);
  Pipeline p(with_weights(random_kec(24, 2, 30, rng), WeightModel::kUniform, rng));
  SegmentDecomposition dec(p.net, p.mst.tree, p.mst.fragment, p.mst.global_edges, p.bfs_forest, 0);
  const auto rep = mst_replacement_edges(p.net, dec, p.bfs_forest, 0);
  for (EdgeId t : p.mst.mst_edges) {
    Weight swapped = 0;
    for (EdgeId e : p.mst.mst_edges)
      if (e != t) swapped += p.g.edge(e).w;
    swapped += p.g.edge(rep[static_cast<std::size_t>(t)]).w;

    Graph faulted(p.g.num_vertices());
    std::vector<Weight> faulted_w;
    for (EdgeId e = 0; e < p.g.num_edges(); ++e) {
      if (e == t) continue;
      faulted.add_edge(p.g.edge(e).u, p.g.edge(e).v, p.g.edge(e).w);
    }
    Weight direct = 0;
    for (EdgeId fe : kruskal_mst(faulted)) direct += faulted.edge(fe).w;
    EXPECT_EQ(swapped, direct) << "tree edge " << t;
  }
}

TEST(FtMst, RoundsStaySublinear) {
  Rng rng(17);
  Pipeline p(with_weights(random_kec(256, 2, 512, rng), WeightModel::kUniform, rng));
  SegmentDecomposition dec(p.net, p.mst.tree, p.mst.fragment, p.mst.global_edges, p.bfs_forest, 0);
  const std::uint64_t before = p.net.rounds();
  mst_replacement_edges(p.net, dec, p.bfs_forest, 0);
  EXPECT_LT(p.net.rounds() - before, 2000u);  // ~ D + sqrt(n) with constants
}

}  // namespace
}  // namespace deck
