#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "sketch/sketch_io.hpp"
#include "sketch/stream.hpp"
#include "sketch_test_util.hpp"
#include "support/rng.hpp"

namespace deck {
namespace {

L0Sampler populated_sampler(std::uint64_t universe, std::uint64_t seed, int updates) {
  L0Sampler s(universe, seed);
  Rng rng(seed ^ 0xabcdULL);
  for (int i = 0; i < updates; ++i)
    s.update(rng.next_below(universe), rng.next_bool(0.5) ? 1 : -1);
  return s;
}

SketchConnectivity populated_bank(int n, std::uint64_t seed) {
  Rng rng(seed);
  Graph g = random_kec(n, 2, n, rng);
  SketchOptions opt;
  opt.seed = seed;
  opt.max_forests = 2;
  SketchConnectivity bank(n, opt);
  for (const Edge& e : g.edges()) bank.update(e.u, e.v, 1);
  return bank;
}

TEST(SketchIo, SamplerRoundTripIsExact) {
  const L0Sampler original = populated_sampler(1 << 12, 77, 300);
  const std::vector<std::uint8_t> bytes = encode_sampler(original);
  const L0Sampler back = decode_sampler(bytes);
  EXPECT_TRUE(back.compatible(original));
  EXPECT_EQ(encode_sampler(back), bytes);  // re-encode is byte-identical
  // And behaviorally the same object: merging the negation wipes it.
  L0Sampler neg(1 << 12, 77);
  Rng rng(77 ^ 0xabcdULL);
  for (int i = 0; i < 300; ++i) neg.update(rng.next_below(1 << 12), rng.next_bool(0.5) ? -1 : 1);
  L0Sampler check = back;
  check.merge(neg);
  EXPECT_TRUE(check.empty());
}

TEST(SketchIo, EmptySamplerRoundTrips) {
  const L0Sampler s(1, 1, 1);
  const L0Sampler back = decode_sampler(encode_sampler(s));
  EXPECT_TRUE(back.empty());
  EXPECT_EQ(back.universe(), 1u);
}

TEST(SketchIo, BankRoundTripPreservesRecovery) {
  SketchConnectivity bank = populated_bank(32, 901);
  const std::vector<std::uint8_t> bytes = encode_bank(bank);
  SketchConnectivity back = decode_bank(bytes);
  EXPECT_TRUE(back.compatible(bank));
  EXPECT_EQ(encode_bank(back), bytes);
  // The decoded bank recovers the exact same forests.
  EXPECT_EQ(sorted_pairs(back.k_spanning_forests(2)), sorted_pairs(bank.k_spanning_forests(2)));
}

TEST(SketchIo, BankCursorSurvivesRoundTrip) {
  SketchConnectivity bank = populated_bank(24, 31);
  (void)bank.spanning_forest();
  const int used = bank.copies_used();
  ASSERT_GT(used, 0);
  EXPECT_EQ(decode_bank(encode_bank(bank)).copies_used(), used);
}

TEST(SketchIo, TruncationAtEveryLengthErrorsCleanly) {
  // The fuzz seam: every proper prefix of a valid buffer must raise
  // SketchIoError — no crash, no UB, no partial object.
  const std::vector<std::uint8_t> bytes = encode_sampler(populated_sampler(64, 5, 20));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::span<const std::uint8_t> prefix(bytes.data(), len);
    EXPECT_THROW((void)decode_sampler(prefix), SketchIoError) << "len=" << len;
  }
}

TEST(SketchIo, BankTruncationErrorsCleanly) {
  const std::vector<std::uint8_t> bytes = encode_bank(populated_bank(12, 8));
  // Sweep a stride of prefixes (the full sweep is quadratic in buffer size).
  for (std::size_t len = 0; len < bytes.size(); len += 97) {
    const std::span<const std::uint8_t> prefix(bytes.data(), len);
    EXPECT_THROW((void)decode_bank(prefix), SketchIoError) << "len=" << len;
  }
  EXPECT_THROW((void)decode_bank(std::span<const std::uint8_t>(bytes.data(), bytes.size() - 1)),
               SketchIoError);
}

TEST(SketchIo, BadMagicRejected) {
  std::vector<std::uint8_t> bytes = encode_sampler(populated_sampler(64, 5, 20));
  bytes[0] ^= 0xff;
  EXPECT_THROW((void)decode_sampler(bytes), SketchIoError);
  // A sampler buffer is not a bank buffer, even when intact.
  const std::vector<std::uint8_t> ok = encode_sampler(populated_sampler(64, 5, 20));
  EXPECT_THROW((void)decode_bank(ok), SketchIoError);
}

// Mirrors the codec's trailing checksum so tests can re-seal a buffer after
// deliberately patching a header field.
void reseal(std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i + 8 < bytes.size(); ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  for (int i = 0; i < 8; ++i)
    bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(h >> (8 * i));
}

TEST(SketchIo, VersionSkewRejected) {
  std::vector<std::uint8_t> bytes = encode_bank(populated_bank(12, 8));
  bytes[8] = static_cast<std::uint8_t>(kSketchIoVersion + 1);  // version field follows the magic
  // Unrepaired, the checksum trips; resealed, the version check itself must.
  EXPECT_THROW((void)decode_bank(bytes), SketchIoError);
  reseal(bytes);
  try {
    (void)decode_bank(bytes);
    FAIL() << "version skew accepted";
  } catch (const SketchIoError& e) {
    EXPECT_NE(std::string(e.what()).find("version skew"), std::string::npos) << e.what();
  }
}

TEST(SketchIo, ForgedHeaderShapeRejectedBeforeAllocation) {
  // A resealed header claiming a huge vertex count must fail on the payload
  // arithmetic — decode never trusts the header enough to allocate for it.
  std::vector<std::uint8_t> bytes = encode_bank(populated_bank(12, 8));
  bytes[12] = 0xff;  // n lives right after magic+version; blow up its low bytes
  bytes[13] = 0xff;
  reseal(bytes);
  EXPECT_THROW((void)decode_bank(bytes), SketchIoError);
}

TEST(SketchIo, EverySingleByteFlipIsDetected) {
  // The trailing FNV-1a checksum must catch any single-byte corruption
  // anywhere in the buffer — header, payload, or the checksum itself.
  const std::vector<std::uint8_t> bytes = encode_sampler(populated_sampler(256, 9, 50));
  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> corrupt = bytes;
    const std::size_t pos = static_cast<std::size_t>(rng.next_below(corrupt.size()));
    const auto flip = static_cast<std::uint8_t>(1u << rng.next_below(8));
    corrupt[pos] ^= flip;
    EXPECT_THROW((void)decode_sampler(corrupt), SketchIoError) << "pos=" << pos;
  }
}

// Bank header offsets (after the 8-byte magic): version, then
// n/seed/max_forests/columns/rounds_slack/cursor, then the v2 policy block.
constexpr std::size_t kVersionOffset = 8;
constexpr std::size_t kPolicyOffset = 8 + 4 + 4 + 8 + 4 + 4 + 4 + 4;
constexpr std::size_t kPolicyBytes = 5 * 4;

void put_u32_at(std::vector<std::uint8_t>& bytes, std::size_t pos, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes[pos + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (8 * i));
}

/// Downgrades a v2 bank buffer (policy disabled) to an on-the-wire v1
/// buffer: strip the policy block, declare version 1, reseal.
std::vector<std::uint8_t> as_v1(std::vector<std::uint8_t> bytes) {
  bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(kPolicyOffset),
              bytes.begin() + static_cast<std::ptrdiff_t>(kPolicyOffset + kPolicyBytes));
  put_u32_at(bytes, kVersionOffset, 1);
  reseal(bytes);
  return bytes;
}

TEST(SketchIo, V1BankStillDecodes) {
  // Backward compatibility: a pre-policy (v1) buffer decodes into a bank
  // with the default (disabled) policy and identical sketch state.
  SketchConnectivity bank = populated_bank(24, 77);
  const std::vector<std::uint8_t> v2 = encode_bank(bank);
  const std::vector<std::uint8_t> v1 = as_v1(v2);
  SketchConnectivity back = decode_bank(v1);
  EXPECT_TRUE(back.compatible(bank));
  EXPECT_FALSE(back.options().auto_size.enabled);
  EXPECT_EQ(encode_bank(back), v2);  // re-encode upgrades to the current version
  EXPECT_EQ(sorted_pairs(back.k_spanning_forests(2)), sorted_pairs(bank.k_spanning_forests(2)));
}

TEST(SketchIo, V1BufferCarryingV2MetadataRejected) {
  // The header-trust fix: a buffer *declaring* v1 but shaped like v2 (the
  // policy block present) must fail the declared-version size check — the
  // decoder never lets header bytes it didn't expect pass as payload.
  std::vector<std::uint8_t> bytes = encode_bank(populated_bank(12, 8));
  put_u32_at(bytes, kVersionOffset, 1);  // lie about the version, keep v2 layout
  reseal(bytes);
  EXPECT_THROW((void)decode_bank(bytes), SketchIoError);
}

TEST(SketchIo, V2BufferMissingPolicyBlockRejected) {
  // The converse lie: declares v2 but ships a v1-shaped body.
  std::vector<std::uint8_t> bytes = as_v1(encode_bank(populated_bank(12, 8)));
  put_u32_at(bytes, kVersionOffset, 2);
  reseal(bytes);
  EXPECT_THROW((void)decode_bank(bytes), SketchIoError);
}

TEST(SketchIo, PolicyFieldRangesValidated) {
  // Fuzz-style negative sweep over the v2 policy block: flag beyond {0,1},
  // zero sizing fields, growth below 2 — all must raise SketchIoError, and
  // message-wise blame the metadata rather than the checksum.
  const std::vector<std::uint8_t> good = encode_bank(populated_bank(12, 8));
  struct Patch {
    std::size_t field;  // u32 index into the policy block
    std::uint32_t value;
  };
  const Patch patches[] = {
      {0, 2}, {0, 0xffffffffu},       // enabled flag beyond {0,1}
      {1, 0}, {1, 1u << 20},          // initial_columns
      {2, 0}, {2, 1u << 20},          // initial_rounds_slack
      {3, 0}, {3, 1}, {3, 1u << 20},  // growth (must be >= 2)
      {4, 0}, {4, 1u << 20},          // max_attempts
  };
  for (const Patch& p : patches) {
    std::vector<std::uint8_t> bytes = good;
    put_u32_at(bytes, kPolicyOffset + 4 * p.field, p.value);
    reseal(bytes);
    try {
      (void)decode_bank(bytes);
      FAIL() << "accepted policy field " << p.field << " = " << p.value;
    } catch (const SketchIoError& e) {
      EXPECT_NE(std::string(e.what()).find("auto-size"), std::string::npos) << e.what();
    }
  }
  // All five fields at legal values still decode (sanity for the sweep).
  std::vector<std::uint8_t> ok = good;
  put_u32_at(ok, kPolicyOffset + 0, 1);
  put_u32_at(ok, kPolicyOffset + 4, 3);
  put_u32_at(ok, kPolicyOffset + 8, 2);
  put_u32_at(ok, kPolicyOffset + 12, 4);
  put_u32_at(ok, kPolicyOffset + 16, 5);
  reseal(ok);
  const SketchConnectivity back = decode_bank(ok);
  EXPECT_TRUE(back.options().auto_size.enabled);
  EXPECT_EQ(back.options().auto_size.initial_columns, 3);
  EXPECT_EQ(back.options().auto_size.growth, 4);
  EXPECT_EQ(back.options().auto_size.max_attempts, 5);
}

TEST(SketchIo, UnknownFutureVersionRejected) {
  std::vector<std::uint8_t> bytes = encode_bank(populated_bank(12, 8));
  put_u32_at(bytes, kVersionOffset, kSketchIoVersion + 7);
  reseal(bytes);
  try {
    (void)decode_bank(bytes);
    FAIL() << "future version accepted";
  } catch (const SketchIoError& e) {
    EXPECT_NE(std::string(e.what()).find("version skew"), std::string::npos) << e.what();
  }
  put_u32_at(bytes, kVersionOffset, 0);  // version 0 never existed
  reseal(bytes);
  EXPECT_THROW((void)decode_bank(bytes), SketchIoError);
}

TEST(SketchIo, TrailingGarbageRejected) {
  std::vector<std::uint8_t> bytes = encode_bank(populated_bank(12, 8));
  bytes.push_back(0);
  EXPECT_THROW((void)decode_bank(bytes), SketchIoError);
}

TEST(SketchIo, MergeIsAssociativeAndCommutative) {
  // merge(a, merge(b, c)) == merge(merge(a, b), c), byte-for-byte — the
  // property that lets a coordinator fold shard banks in any arrival order.
  const int n = 20;
  SketchOptions opt;
  opt.seed = 555;
  auto make = [&](std::uint64_t stream_seed) {
    SketchConnectivity bank(n, opt);
    Rng rng(stream_seed);
    for (int i = 0; i < 60; ++i) {
      const auto u = static_cast<VertexId>(rng.next_below(n));
      auto v = static_cast<VertexId>(rng.next_below(n));
      if (u == v) v = (v + 1) % n;
      bank.update(u, v, rng.next_bool(0.7) ? 1 : -1);
    }
    return bank;
  };
  const SketchConnectivity a = make(1), b = make(2), c = make(3);

  SketchConnectivity left = a;  // (a + b) + c
  left.merge(b);
  left.merge(c);
  SketchConnectivity bc = b;  // a + (b + c)
  bc.merge(c);
  SketchConnectivity right = a;
  right.merge(bc);
  EXPECT_EQ(encode_bank(left), encode_bank(right));

  SketchConnectivity ba = b;  // commutativity: b + a == a + b
  ba.merge(a);
  SketchConnectivity ab = a;
  ab.merge(b);
  EXPECT_EQ(encode_bank(ab), encode_bank(ba));
}

TEST(SketchIo, MergeEncodedEqualsInProcessMerge) {
  const GraphStream s = [] {
    Rng rng(77);
    Graph g = random_kec(28, 2, 28, rng);
    return GraphStream::from_graph(g, rng);
  }();
  SketchOptions opt;
  opt.seed = 99;

  // "Remote" shard: first half of the stream, shipped as bytes.
  SketchConnectivity remote(s.num_vertices(), opt);
  SketchConnectivity local(s.num_vertices(), opt);
  SketchConnectivity whole(s.num_vertices(), opt);
  std::size_t i = 0;
  for (const StreamUpdate& u : s.updates()) {
    const int d = u.insert ? 1 : -1;
    whole.update(u.u, u.v, d);
    (i++ < s.size() / 2 ? remote : local).update(u.u, u.v, d);
  }
  const std::vector<std::uint8_t> shipped = encode_bank(remote);
  merge_encoded(local, shipped);
  EXPECT_EQ(encode_bank(local), encode_bank(whole));
}

TEST(SketchIo, MergeEncodedRejectsIncompatibleBank) {
  SketchOptions a, b;
  a.seed = 1;
  b.seed = 2;
  SketchConnectivity into(8, a);
  const SketchConnectivity other(8, b);
  EXPECT_THROW(merge_encoded(into, encode_bank(other)), std::logic_error);
}

}  // namespace
}  // namespace deck
