#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "sketch/sketch_io.hpp"
#include "sketch/stream.hpp"
#include "sketch_test_util.hpp"
#include "support/rng.hpp"

namespace deck {
namespace {

L0Sampler populated_sampler(std::uint64_t universe, std::uint64_t seed, int updates) {
  L0Sampler s(universe, seed);
  Rng rng(seed ^ 0xabcdULL);
  for (int i = 0; i < updates; ++i)
    s.update(rng.next_below(universe), rng.next_bool(0.5) ? 1 : -1);
  return s;
}

SketchConnectivity populated_bank(int n, std::uint64_t seed) {
  Rng rng(seed);
  Graph g = random_kec(n, 2, n, rng);
  SketchOptions opt;
  opt.seed = seed;
  opt.max_forests = 2;
  SketchConnectivity bank(n, opt);
  for (const Edge& e : g.edges()) bank.update(e.u, e.v, 1);
  return bank;
}

TEST(SketchIo, SamplerRoundTripIsExact) {
  const L0Sampler original = populated_sampler(1 << 12, 77, 300);
  const std::vector<std::uint8_t> bytes = encode_sampler(original);
  const L0Sampler back = decode_sampler(bytes);
  EXPECT_TRUE(back.compatible(original));
  EXPECT_EQ(encode_sampler(back), bytes);  // re-encode is byte-identical
  // And behaviorally the same object: merging the negation wipes it.
  L0Sampler neg(1 << 12, 77);
  Rng rng(77 ^ 0xabcdULL);
  for (int i = 0; i < 300; ++i) neg.update(rng.next_below(1 << 12), rng.next_bool(0.5) ? -1 : 1);
  L0Sampler check = back;
  check.merge(neg);
  EXPECT_TRUE(check.empty());
}

TEST(SketchIo, EmptySamplerRoundTrips) {
  const L0Sampler s(1, 1, 1);
  const L0Sampler back = decode_sampler(encode_sampler(s));
  EXPECT_TRUE(back.empty());
  EXPECT_EQ(back.universe(), 1u);
}

TEST(SketchIo, BankRoundTripPreservesRecovery) {
  SketchConnectivity bank = populated_bank(32, 901);
  const std::vector<std::uint8_t> bytes = encode_bank(bank);
  SketchConnectivity back = decode_bank(bytes);
  EXPECT_TRUE(back.compatible(bank));
  EXPECT_EQ(encode_bank(back), bytes);
  // The decoded bank recovers the exact same forests.
  EXPECT_EQ(sorted_pairs(back.k_spanning_forests(2)), sorted_pairs(bank.k_spanning_forests(2)));
}

TEST(SketchIo, BankCursorSurvivesRoundTrip) {
  SketchConnectivity bank = populated_bank(24, 31);
  (void)bank.spanning_forest();
  const int used = bank.copies_used();
  ASSERT_GT(used, 0);
  EXPECT_EQ(decode_bank(encode_bank(bank)).copies_used(), used);
}

TEST(SketchIo, TruncationAtEveryLengthErrorsCleanly) {
  // The fuzz seam: every proper prefix of a valid buffer must raise
  // SketchIoError — no crash, no UB, no partial object.
  const std::vector<std::uint8_t> bytes = encode_sampler(populated_sampler(64, 5, 20));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::span<const std::uint8_t> prefix(bytes.data(), len);
    EXPECT_THROW((void)decode_sampler(prefix), SketchIoError) << "len=" << len;
  }
}

TEST(SketchIo, BankTruncationErrorsCleanly) {
  const std::vector<std::uint8_t> bytes = encode_bank(populated_bank(12, 8));
  // Sweep a stride of prefixes (the full sweep is quadratic in buffer size).
  for (std::size_t len = 0; len < bytes.size(); len += 97) {
    const std::span<const std::uint8_t> prefix(bytes.data(), len);
    EXPECT_THROW((void)decode_bank(prefix), SketchIoError) << "len=" << len;
  }
  EXPECT_THROW((void)decode_bank(std::span<const std::uint8_t>(bytes.data(), bytes.size() - 1)),
               SketchIoError);
}

TEST(SketchIo, BadMagicRejected) {
  std::vector<std::uint8_t> bytes = encode_sampler(populated_sampler(64, 5, 20));
  bytes[0] ^= 0xff;
  EXPECT_THROW((void)decode_sampler(bytes), SketchIoError);
  // A sampler buffer is not a bank buffer, even when intact.
  const std::vector<std::uint8_t> ok = encode_sampler(populated_sampler(64, 5, 20));
  EXPECT_THROW((void)decode_bank(ok), SketchIoError);
}

// Mirrors the codec's trailing checksum so tests can re-seal a buffer after
// deliberately patching a header field.
void reseal(std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i + 8 < bytes.size(); ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  for (int i = 0; i < 8; ++i)
    bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(h >> (8 * i));
}

TEST(SketchIo, VersionSkewRejected) {
  std::vector<std::uint8_t> bytes = encode_bank(populated_bank(12, 8));
  bytes[8] = static_cast<std::uint8_t>(kSketchIoVersion + 1);  // version field follows the magic
  // Unrepaired, the checksum trips; resealed, the version check itself must.
  EXPECT_THROW((void)decode_bank(bytes), SketchIoError);
  reseal(bytes);
  try {
    (void)decode_bank(bytes);
    FAIL() << "version skew accepted";
  } catch (const SketchIoError& e) {
    EXPECT_NE(std::string(e.what()).find("version skew"), std::string::npos) << e.what();
  }
}

TEST(SketchIo, ForgedHeaderShapeRejectedBeforeAllocation) {
  // A resealed header claiming a huge vertex count must fail on the payload
  // arithmetic — decode never trusts the header enough to allocate for it.
  std::vector<std::uint8_t> bytes = encode_bank(populated_bank(12, 8));
  bytes[12] = 0xff;  // n lives right after magic+version; blow up its low bytes
  bytes[13] = 0xff;
  reseal(bytes);
  EXPECT_THROW((void)decode_bank(bytes), SketchIoError);
}

TEST(SketchIo, EverySingleByteFlipIsDetected) {
  // The trailing FNV-1a checksum must catch any single-byte corruption
  // anywhere in the buffer — header, payload, or the checksum itself.
  const std::vector<std::uint8_t> bytes = encode_sampler(populated_sampler(256, 9, 50));
  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> corrupt = bytes;
    const std::size_t pos = static_cast<std::size_t>(rng.next_below(corrupt.size()));
    const auto flip = static_cast<std::uint8_t>(1u << rng.next_below(8));
    corrupt[pos] ^= flip;
    EXPECT_THROW((void)decode_sampler(corrupt), SketchIoError) << "pos=" << pos;
  }
}

// Bank header offsets (after the 8-byte magic): version, then
// n/seed/max_forests/columns/rounds_slack/cursor, then the v2 policy block,
// then the v3 chunk block.
constexpr std::size_t kVersionOffset = 8;
constexpr std::size_t kColumnsOffset = 8 + 4 + 4 + 8 + 4;
constexpr std::size_t kPolicyOffset = 8 + 4 + 4 + 8 + 4 + 4 + 4 + 4;
constexpr std::size_t kPolicyBytes = 5 * 4;
constexpr std::size_t kChunkBlockOffset = kPolicyOffset + kPolicyBytes;
constexpr std::size_t kChunkBlockBytes = 5 * 4;

void put_u32_at(std::vector<std::uint8_t>& bytes, std::size_t pos, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    bytes[pos + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (8 * i));
}

/// Decoding must fail with a SketchIoError whose message contains every
/// expected fragment — the offset/field reporting contract.
void expect_decode_error(const std::vector<std::uint8_t>& bytes,
                         const std::vector<std::string>& fragments) {
  try {
    (void)decode_bank(bytes);
    FAIL() << "malformed buffer accepted";
  } catch (const SketchIoError& e) {
    for (const std::string& fragment : fragments)
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << "message '" << e.what() << "' lacks '" << fragment << "'";
  }
}

/// Downgrades a v3 bank buffer to an on-the-wire v2 buffer: strip the chunk
/// block, declare version 2, reseal.
std::vector<std::uint8_t> as_v2(std::vector<std::uint8_t> bytes) {
  bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(kChunkBlockOffset),
              bytes.begin() + static_cast<std::ptrdiff_t>(kChunkBlockOffset + kChunkBlockBytes));
  put_u32_at(bytes, kVersionOffset, 2);
  reseal(bytes);
  return bytes;
}

/// Downgrades a v3 bank buffer (policy disabled) to an on-the-wire v1
/// buffer: strip the chunk and policy blocks, declare version 1, reseal.
std::vector<std::uint8_t> as_v1(std::vector<std::uint8_t> bytes) {
  bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(kPolicyOffset),
              bytes.begin() + static_cast<std::ptrdiff_t>(kChunkBlockOffset + kChunkBlockBytes));
  put_u32_at(bytes, kVersionOffset, 1);
  reseal(bytes);
  return bytes;
}

TEST(SketchIo, V1BankStillDecodes) {
  // Backward compatibility: a pre-policy (v1) buffer decodes into a bank
  // with the default (disabled) policy and identical sketch state.
  SketchConnectivity bank = populated_bank(24, 77);
  const std::vector<std::uint8_t> v3 = encode_bank(bank);
  const std::vector<std::uint8_t> v1 = as_v1(v3);
  SketchConnectivity back = decode_bank(v1);
  EXPECT_TRUE(back.compatible(bank));
  EXPECT_FALSE(back.options().auto_size.enabled);
  EXPECT_EQ(encode_bank(back), v3);  // re-encode upgrades to the current version
  EXPECT_EQ(sorted_pairs(back.k_spanning_forests(2)), sorted_pairs(bank.k_spanning_forests(2)));
}

TEST(SketchIo, V2BankStillDecodes) {
  // Backward compatibility one version up: a pre-chunk (v2) buffer decodes
  // as the whole bank it always was.
  SketchConnectivity bank = populated_bank(24, 78);
  const std::vector<std::uint8_t> v3 = encode_bank(bank);
  const std::vector<std::uint8_t> v2 = as_v2(v3);
  SketchConnectivity back = decode_bank(v2);
  EXPECT_TRUE(back.compatible(bank));
  EXPECT_EQ(encode_bank(back), v3);
  EXPECT_EQ(sorted_pairs(back.k_spanning_forests(2)), sorted_pairs(bank.k_spanning_forests(2)));
}

TEST(SketchIo, DeclaredVersionBoundsThePayload) {
  // The header-trust fix, across every version pair: a buffer *declaring*
  // an older version but shaped like a newer one (extra header blocks
  // present), or vice versa, must fail the declared-version size check —
  // the decoder never lets header bytes it didn't expect pass as payload.
  const std::vector<std::uint8_t> v3 = encode_bank(populated_bank(12, 8));
  for (std::uint32_t lie : {1u, 2u}) {
    std::vector<std::uint8_t> bytes = v3;  // v3 layout, older version declared
    put_u32_at(bytes, kVersionOffset, lie);
    reseal(bytes);
    expect_decode_error(bytes, {"payload size"});
  }
  std::vector<std::uint8_t> v1_shaped = as_v1(v3);
  for (std::uint32_t lie : {2u, 3u}) {  // v1 layout, newer version declared
    std::vector<std::uint8_t> bytes = v1_shaped;
    put_u32_at(bytes, kVersionOffset, lie);
    reseal(bytes);
    EXPECT_THROW((void)decode_bank(bytes), SketchIoError) << "declared v" << lie;
  }
  std::vector<std::uint8_t> v2_shaped = as_v2(v3);
  put_u32_at(v2_shaped, kVersionOffset, 3);  // v2 layout, v3 declared
  reseal(v2_shaped);
  EXPECT_THROW((void)decode_bank(v2_shaped), SketchIoError);
}

TEST(SketchIo, PolicyFieldRangesValidated) {
  // Fuzz-style negative sweep over the v2 policy block: flag beyond {0,1},
  // zero sizing fields, growth below 2 — all must raise SketchIoError, and
  // message-wise blame the metadata rather than the checksum.
  const std::vector<std::uint8_t> good = encode_bank(populated_bank(12, 8));
  struct Patch {
    std::size_t field;  // u32 index into the policy block
    std::uint32_t value;
  };
  const Patch patches[] = {
      {0, 2}, {0, 0xffffffffu},       // enabled flag beyond {0,1}
      {1, 0}, {1, 1u << 20},          // initial_columns
      {2, 0}, {2, 1u << 20},          // initial_rounds_slack
      {3, 0}, {3, 1}, {3, 1u << 20},  // growth (must be >= 2)
      {4, 0}, {4, 1u << 20},          // max_attempts
  };
  for (const Patch& p : patches) {
    std::vector<std::uint8_t> bytes = good;
    put_u32_at(bytes, kPolicyOffset + 4 * p.field, p.value);
    reseal(bytes);
    try {
      (void)decode_bank(bytes);
      FAIL() << "accepted policy field " << p.field << " = " << p.value;
    } catch (const SketchIoError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("auto-size"), std::string::npos) << what;
      // The offset/field contract: the message pins the failing bytes.
      EXPECT_NE(what.find("byte offset " + std::to_string(kPolicyOffset + 4 * p.field)),
                std::string::npos)
          << what;
    }
  }
  // All five fields at legal values still decode (sanity for the sweep).
  std::vector<std::uint8_t> ok = good;
  put_u32_at(ok, kPolicyOffset + 0, 1);
  put_u32_at(ok, kPolicyOffset + 4, 3);
  put_u32_at(ok, kPolicyOffset + 8, 2);
  put_u32_at(ok, kPolicyOffset + 12, 4);
  put_u32_at(ok, kPolicyOffset + 16, 5);
  reseal(ok);
  const SketchConnectivity back = decode_bank(ok);
  EXPECT_TRUE(back.options().auto_size.enabled);
  EXPECT_EQ(back.options().auto_size.initial_columns, 3);
  EXPECT_EQ(back.options().auto_size.growth, 4);
  EXPECT_EQ(back.options().auto_size.max_attempts, 5);
}

TEST(SketchIo, ErrorsNameTheFieldAndOffset) {
  // The decode_bank error contract: validation failures report which field
  // failed and the byte offset it was read from, not just the failure kind.
  const std::vector<std::uint8_t> good = encode_bank(populated_bank(12, 8));

  std::vector<std::uint8_t> zero_columns = good;
  put_u32_at(zero_columns, kColumnsOffset, 0);
  reseal(zero_columns);
  expect_decode_error(zero_columns,
                      {"field 'columns'", "byte offset " + std::to_string(kColumnsOffset)});

  std::vector<std::uint8_t> huge_columns = good;
  put_u32_at(huge_columns, kColumnsOffset, 1u << 20);
  reseal(huge_columns);
  expect_decode_error(huge_columns, {"field 'columns'", "out of range"});

  // Chunk block: chunk_index must stay below chunk_count.
  std::vector<std::uint8_t> bad_index = good;
  put_u32_at(bad_index, kChunkBlockOffset + 4, 7);  // chunk_index; count stays 1
  reseal(bad_index);
  expect_decode_error(bad_index, {"field 'chunk_index'",
                                  "byte offset " + std::to_string(kChunkBlockOffset + 4)});

  // Chunk block: vertex_end beyond n.
  std::vector<std::uint8_t> bad_end = good;
  put_u32_at(bad_end, kChunkBlockOffset + 16, 1u << 20);
  reseal(bad_end);
  expect_decode_error(bad_end, {"field 'vertex_end'",
                                "byte offset " + std::to_string(kChunkBlockOffset + 16)});

  // Cursor beyond the bank's copy budget.
  std::vector<std::uint8_t> bad_cursor = good;
  put_u32_at(bad_cursor, kPolicyOffset - 4, 0xffffu);  // cursor precedes the policy block
  reseal(bad_cursor);
  expect_decode_error(bad_cursor, {"field 'cursor'",
                                   "byte offset " + std::to_string(kPolicyOffset - 4)});
}

TEST(SketchIo, UnknownFutureVersionRejected) {
  std::vector<std::uint8_t> bytes = encode_bank(populated_bank(12, 8));
  put_u32_at(bytes, kVersionOffset, kSketchIoVersion + 7);
  reseal(bytes);
  try {
    (void)decode_bank(bytes);
    FAIL() << "future version accepted";
  } catch (const SketchIoError& e) {
    EXPECT_NE(std::string(e.what()).find("version skew"), std::string::npos) << e.what();
  }
  put_u32_at(bytes, kVersionOffset, 0);  // version 0 never existed
  reseal(bytes);
  EXPECT_THROW((void)decode_bank(bytes), SketchIoError);
}

TEST(SketchIo, TrailingGarbageRejected) {
  std::vector<std::uint8_t> bytes = encode_bank(populated_bank(12, 8));
  bytes.push_back(0);
  EXPECT_THROW((void)decode_bank(bytes), SketchIoError);
}

TEST(SketchIo, MergeIsAssociativeAndCommutative) {
  // merge(a, merge(b, c)) == merge(merge(a, b), c), byte-for-byte — the
  // property that lets a coordinator fold shard banks in any arrival order.
  const int n = 20;
  SketchOptions opt;
  opt.seed = 555;
  auto make = [&](std::uint64_t stream_seed) {
    SketchConnectivity bank(n, opt);
    Rng rng(stream_seed);
    for (int i = 0; i < 60; ++i) {
      const auto u = static_cast<VertexId>(rng.next_below(n));
      auto v = static_cast<VertexId>(rng.next_below(n));
      if (u == v) v = (v + 1) % n;
      bank.update(u, v, rng.next_bool(0.7) ? 1 : -1);
    }
    return bank;
  };
  const SketchConnectivity a = make(1), b = make(2), c = make(3);

  SketchConnectivity left = a;  // (a + b) + c
  left.merge(b);
  left.merge(c);
  SketchConnectivity bc = b;  // a + (b + c)
  bc.merge(c);
  SketchConnectivity right = a;
  right.merge(bc);
  EXPECT_EQ(encode_bank(left), encode_bank(right));

  SketchConnectivity ba = b;  // commutativity: b + a == a + b
  ba.merge(a);
  SketchConnectivity ab = a;
  ab.merge(b);
  EXPECT_EQ(encode_bank(ab), encode_bank(ba));
}

TEST(SketchIo, MergeEncodedEqualsInProcessMerge) {
  const GraphStream s = [] {
    Rng rng(77);
    Graph g = random_kec(28, 2, 28, rng);
    return GraphStream::from_graph(g, rng);
  }();
  SketchOptions opt;
  opt.seed = 99;

  // "Remote" shard: first half of the stream, shipped as bytes.
  SketchConnectivity remote(s.num_vertices(), opt);
  SketchConnectivity local(s.num_vertices(), opt);
  SketchConnectivity whole(s.num_vertices(), opt);
  std::size_t i = 0;
  for (const StreamUpdate& u : s.updates()) {
    const int d = u.insert ? 1 : -1;
    whole.update(u.u, u.v, d);
    (i++ < s.size() / 2 ? remote : local).update(u.u, u.v, d);
  }
  const std::vector<std::uint8_t> shipped = encode_bank(remote);
  merge_encoded(local, shipped);
  EXPECT_EQ(encode_bank(local), encode_bank(whole));
}

TEST(SketchIo, MergeEncodedRejectsIncompatibleBank) {
  SketchOptions a, b;
  a.seed = 1;
  b.seed = 2;
  SketchConnectivity into(8, a);
  const SketchConnectivity other(8, b);
  EXPECT_THROW(merge_encoded(into, encode_bank(other)), std::logic_error);
}

// ---------------------------------------------------------------------------
// Chunked (v3) shipping: encode_bank_chunks + BankAssembler.

TEST(SketchIo, ChunkRoundTripIsExactForAnyChunkSize) {
  SketchConnectivity bank = populated_bank(26, 4100);
  const std::vector<std::uint8_t> whole = encode_bank(bank);
  for (int vpc : {1, 3, 7, 26, 100}) {
    ChunkOptions copt;
    copt.vertices_per_chunk = vpc;
    const auto chunks = encode_bank_chunks(bank, copt);
    EXPECT_EQ(chunks.size(), static_cast<std::size_t>((26 + vpc - 1) / vpc));
    BankAssembler assembler(bank.num_vertices(), bank.options());
    for (const auto& c : chunks) EXPECT_TRUE(assembler.add_chunk(c));
    ASSERT_TRUE(assembler.complete()) << "vpc=" << vpc;
    EXPECT_EQ(encode_bank(assembler.take()), whole) << "vpc=" << vpc;
  }
}

TEST(SketchIo, ChunkMetadataIsPeekable) {
  SketchConnectivity bank = populated_bank(20, 4200);
  ChunkOptions copt;
  copt.source_id = 9;
  copt.vertices_per_chunk = 6;
  const auto chunks = encode_bank_chunks(bank, copt);
  ASSERT_EQ(chunks.size(), 4u);  // ceil(20 / 6)
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const ChunkInfo info = peek_chunk(chunks[i]);
    EXPECT_EQ(info.version, kSketchIoVersion);
    EXPECT_EQ(info.source_id, 9u);
    EXPECT_EQ(info.chunk_index, static_cast<std::uint32_t>(i));
    EXPECT_EQ(info.chunk_count, 4u);
    EXPECT_EQ(info.vertex_begin, static_cast<VertexId>(6 * i));
    EXPECT_EQ(info.vertex_end, std::min<VertexId>(20, static_cast<VertexId>(6 * (i + 1))));
    EXPECT_EQ(info.n, 20);
    EXPECT_EQ(info.options.seed, bank.options().seed);
  }
  // A whole-bank buffer peeks as the single full-range chunk; so does a
  // downgraded pre-chunk (v2) buffer.
  const ChunkInfo whole = peek_chunk(encode_bank(bank));
  EXPECT_EQ(whole.chunk_count, 1u);
  EXPECT_EQ(whole.vertex_begin, 0);
  EXPECT_EQ(whole.vertex_end, 20);
  const ChunkInfo v2 = peek_chunk(as_v2(encode_bank(bank)));
  EXPECT_EQ(v2.version, 2u);
  EXPECT_EQ(v2.chunk_count, 1u);
  EXPECT_EQ(v2.vertex_end, 20);
}

TEST(SketchIo, TargetChunkBytesBoundsChunkSizes) {
  SketchConnectivity bank = populated_bank(24, 4300);
  ChunkOptions copt;
  copt.target_chunk_bytes = 64 * 1024;
  const auto chunks = encode_bank_chunks(bank, copt);
  ASSERT_GT(chunks.size(), 1u);  // the target forces a real split
  // Soft target: a chunk holds whole vertices, so it can overshoot by at
  // most one vertex's buckets (plus the header) — never by another chunk.
  for (const auto& c : chunks) EXPECT_LE(c.size(), 2 * copt.target_chunk_bytes);
  BankAssembler assembler(bank.num_vertices(), bank.options());
  for (const auto& c : chunks) assembler.add_chunk(c);
  ASSERT_TRUE(assembler.complete());
  EXPECT_EQ(encode_bank(assembler.take()), encode_bank(bank));
}

TEST(SketchIo, ReorderedChunksAssembleIdentically) {
  SketchConnectivity bank = populated_bank(22, 4400);
  ChunkOptions copt;
  copt.vertices_per_chunk = 4;
  auto chunks = encode_bank_chunks(bank, copt);
  Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    // Fisher–Yates with the deck Rng, so the sweep is reproducible.
    for (std::size_t i = chunks.size(); i > 1; --i)
      std::swap(chunks[i - 1], chunks[static_cast<std::size_t>(rng.next_below(i))]);
    BankAssembler assembler(bank.num_vertices(), bank.options());
    for (const auto& c : chunks) assembler.add_chunk(c);
    ASSERT_TRUE(assembler.complete());
    EXPECT_EQ(encode_bank(assembler.take()), encode_bank(bank)) << "trial " << trial;
  }
}

TEST(SketchIo, DuplicatedChunksAreIdempotent) {
  // Resumability: a sender may replay chunks after a reconnect; replays are
  // detected (add_chunk returns false) and never double-merged.
  SketchConnectivity bank = populated_bank(18, 4500);
  ChunkOptions copt;
  copt.vertices_per_chunk = 5;
  const auto chunks = encode_bank_chunks(bank, copt);
  BankAssembler assembler(bank.num_vertices(), bank.options());
  for (const auto& c : chunks) {
    EXPECT_TRUE(assembler.add_chunk(c));
    EXPECT_FALSE(assembler.add_chunk(c));  // immediate replay
  }
  EXPECT_FALSE(assembler.add_chunk(chunks[0]));  // late replay
  ASSERT_TRUE(assembler.complete());
  EXPECT_EQ(encode_bank(assembler.take()), encode_bank(bank));
}

TEST(SketchIo, DroppedChunkIsDetected) {
  SketchConnectivity bank = populated_bank(18, 4600);
  ChunkOptions copt;
  copt.vertices_per_chunk = 5;
  const auto chunks = encode_bank_chunks(bank, copt);
  ASSERT_GE(chunks.size(), 3u);
  BankAssembler assembler(bank.num_vertices(), bank.options());
  for (std::size_t i = 0; i < chunks.size(); ++i)
    if (i != 1) assembler.add_chunk(chunks[i]);  // chunk 1 lost in transit
  EXPECT_FALSE(assembler.complete());
  try {
    (void)assembler.take();
    FAIL() << "incomplete stream yielded a bank";
  } catch (const SketchIoError& e) {
    EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos) << e.what();
  }
}

TEST(SketchIo, MultiSourceChunksMergeBySketchAddition) {
  // Two shards chunk their private banks with different chunk sizes; the
  // assembler must fold the interleaved streams into exactly the bank an
  // in-process merge builds.
  const int n = 24;
  SketchOptions opt;
  opt.seed = 4700;
  SketchConnectivity a(n, opt), b(n, opt), both(n, opt);
  Rng rng(4701);
  for (int i = 0; i < 80; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    auto v = static_cast<VertexId>(rng.next_below(n));
    if (u == v) v = (v + 1) % n;
    const int d = rng.next_bool(0.7) ? 1 : -1;
    (i % 2 == 0 ? a : b).update(u, v, d);
    both.update(u, v, d);
  }
  ChunkOptions ca, cb;
  ca.source_id = 0;
  ca.vertices_per_chunk = 7;
  cb.source_id = 1;
  cb.vertices_per_chunk = 5;
  const auto chunks_a = encode_bank_chunks(a, ca);
  const auto chunks_b = encode_bank_chunks(b, cb);
  BankAssembler assembler(n, opt);
  // Interleave the two streams, a chunk from each in turn.
  for (std::size_t i = 0; i < std::max(chunks_a.size(), chunks_b.size()); ++i) {
    if (i < chunks_b.size()) assembler.add_chunk(chunks_b[i]);
    if (i < chunks_a.size()) assembler.add_chunk(chunks_a[i]);
  }
  EXPECT_EQ(assembler.sources_seen(), 2u);
  ASSERT_TRUE(assembler.complete());
  EXPECT_EQ(encode_bank(assembler.take()), encode_bank(both));
}

TEST(SketchIo, AssemblerAcceptsWholeBankBuffersAsSingleChunks) {
  // v1/v2 senders (or v3 whole-bank shippers) interoperate with a chunked
  // assembler: a whole bank is its own single full-range chunk.
  const int n = 16;
  SketchOptions opt;
  opt.seed = 4800;
  SketchConnectivity a(n, opt), b(n, opt), both(n, opt);
  Rng rng(4801);
  for (int i = 0; i < 50; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    auto v = static_cast<VertexId>(rng.next_below(n));
    if (u == v) v = (v + 1) % n;
    (i % 2 == 0 ? a : b).update(u, v, 1);
    both.update(u, v, 1);
  }
  BankAssembler assembler(n, opt);
  // Source 0 ships chunked v3; a v1-era sender ships its whole bank. The
  // two must not collide: the whole bank arrives as source 1.
  ChunkOptions ca;
  ca.source_id = 0;
  ca.vertices_per_chunk = 6;
  for (const auto& c : encode_bank_chunks(a, ca)) assembler.add_chunk(c);
  std::vector<std::uint8_t> v1_bank = as_v1(encode_bank(b));
  // A v1 buffer has no source field (implied source 0) — it would collide
  // with the chunked source. The assembler must reject the conflicting
  // chunk_count rather than double-merge.
  EXPECT_THROW((void)assembler.add_chunk(v1_bank), SketchIoError);
  // Shipped as a v3 whole-bank chunk under its own source id, it merges.
  ChunkOptions cb;
  cb.source_id = 1;
  cb.vertices_per_chunk = n;  // single chunk
  for (const auto& c : encode_bank_chunks(b, cb)) assembler.add_chunk(c);
  ASSERT_TRUE(assembler.complete());
  EXPECT_EQ(encode_bank(assembler.take()), encode_bank(both));
}

TEST(SketchIo, PartialChunkRejectedByWholeBankDecode) {
  SketchConnectivity bank = populated_bank(20, 4900);
  ChunkOptions copt;
  copt.vertices_per_chunk = 8;
  const auto chunks = encode_bank_chunks(bank, copt);
  ASSERT_GT(chunks.size(), 1u);
  try {
    (void)decode_bank(chunks[0]);
    FAIL() << "partial chunk decoded as a whole bank";
  } catch (const SketchIoError& e) {
    EXPECT_NE(std::string(e.what()).find("BankAssembler"), std::string::npos) << e.what();
  }
}

TEST(SketchIo, CorruptOrTruncatedChunksRejectedWithoutStateDamage) {
  SketchConnectivity bank = populated_bank(18, 5000);
  ChunkOptions copt;
  copt.vertices_per_chunk = 6;
  const auto chunks = encode_bank_chunks(bank, copt);
  BankAssembler assembler(bank.num_vertices(), bank.options());
  Rng rng(5001);
  for (const auto& c : chunks) {
    // Bit-flip and truncation sweeps against every chunk before the good
    // copy lands: each must throw and leave the assembler consistent.
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<std::uint8_t> corrupt = c;
      corrupt[static_cast<std::size_t>(rng.next_below(corrupt.size()))] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
      EXPECT_THROW((void)assembler.add_chunk(corrupt), SketchIoError);
    }
    for (std::size_t len = 0; len < c.size(); len += 61)
      EXPECT_THROW(
          (void)assembler.add_chunk(std::span<const std::uint8_t>(c.data(), len)),
          SketchIoError);
    EXPECT_TRUE(assembler.add_chunk(c));
  }
  ASSERT_TRUE(assembler.complete());
  EXPECT_EQ(encode_bank(assembler.take()), encode_bank(bank));
}

TEST(SketchIo, IncompatibleChunkRejected) {
  SketchConnectivity bank = populated_bank(18, 5100);
  const auto chunks = encode_bank_chunks(bank, {});
  SketchOptions other = bank.options();
  other.seed ^= 1;
  BankAssembler assembler(18, other);
  EXPECT_THROW((void)assembler.add_chunk(chunks[0]), SketchIoError);
  SketchOptions wrong_n = bank.options();
  BankAssembler small(17, wrong_n);
  EXPECT_THROW((void)small.add_chunk(chunks[0]), SketchIoError);
}

TEST(SketchIo, ChunkedShipRandomizedFuzz) {
  // The property under stress: random chunk sizes per source, random
  // arrival order, random replays — the assembled bank is always
  // bit-identical to the in-process merge, or a typed error, never UB.
  const int n = 21;
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    Rng rng(6000 + trial);
    SketchOptions opt;
    opt.seed = 6100 + trial;
    const int sources = 1 + static_cast<int>(rng.next_below(3));
    std::vector<SketchConnectivity> banks;
    SketchConnectivity whole(n, opt);
    for (int s = 0; s < sources; ++s) banks.emplace_back(n, opt);
    for (int i = 0; i < 70; ++i) {
      const auto u = static_cast<VertexId>(rng.next_below(n));
      auto v = static_cast<VertexId>(rng.next_below(n));
      if (u == v) v = (v + 1) % n;
      const int d = rng.next_bool(0.6) ? 1 : -1;
      banks[static_cast<std::size_t>(rng.next_below(sources))].update(u, v, d);
      whole.update(u, v, d);
    }
    std::vector<std::vector<std::uint8_t>> wire;
    for (int s = 0; s < sources; ++s) {
      ChunkOptions copt;
      copt.source_id = static_cast<std::uint32_t>(s);
      copt.vertices_per_chunk = 1 + static_cast<int>(rng.next_below(n + 4));
      for (auto& c : encode_bank_chunks(banks[static_cast<std::size_t>(s)], copt))
        wire.push_back(std::move(c));
    }
    // Shuffle arrivals and replay a random prefix of them afterwards.
    for (std::size_t i = wire.size(); i > 1; --i)
      std::swap(wire[i - 1], wire[static_cast<std::size_t>(rng.next_below(i))]);
    BankAssembler assembler(n, opt);
    for (const auto& c : wire) assembler.add_chunk(c);
    for (std::size_t i = 0; i < wire.size() && i < rng.next_below(4); ++i)
      EXPECT_FALSE(assembler.add_chunk(wire[i]));
    ASSERT_TRUE(assembler.complete()) << "trial " << trial;
    EXPECT_EQ(encode_bank(assembler.take()), encode_bank(whole)) << "trial " << trial;
  }
}

TEST(SketchIo, GappedChunkStreamThrowsBeforeMutatingTheBank) {
  // Two disjoint chunks that claim to be a complete source but leave a
  // vertex gap: the completing add_chunk must throw *without* merging, so
  // the assembler still reports the source incomplete instead of yielding
  // a silently wrong bank.
  SketchConnectivity bank = populated_bank(18, 5300);
  ChunkOptions copt;
  copt.vertices_per_chunk = 7;  // 3 chunks: [0,7) [7,14) [14,18)
  auto chunks = encode_bank_chunks(bank, copt);
  ASSERT_EQ(chunks.size(), 3u);
  // Forge a 2-chunk source out of chunks 0 and 1 — disjoint, valid
  // payloads, but covering only 14 of 18 vertices.
  for (std::size_t i = 0; i < 2; ++i) {
    put_u32_at(chunks[i], kChunkBlockOffset + 8, 2);  // chunk_count 3 → 2
    reseal(chunks[i]);
  }
  BankAssembler assembler(bank.num_vertices(), bank.options());
  EXPECT_TRUE(assembler.add_chunk(chunks[0]));
  try {
    (void)assembler.add_chunk(chunks[1]);
    FAIL() << "gapped chunk stream completed";
  } catch (const SketchIoError& e) {
    EXPECT_NE(std::string(e.what()).find("cover"), std::string::npos) << e.what();
  }
  EXPECT_FALSE(assembler.complete());
  EXPECT_EQ(assembler.chunks_received(), 1u);  // the gapped chunk never merged
  EXPECT_THROW((void)assembler.take(), SketchIoError);
}

TEST(SketchIo, ForgedChunkCountRejectedBeforeBookkeeping) {
  // chunk_count is bounded by the vertex count: a tiny buffer claiming 2^29
  // chunks must be rejected on the header field, not after allocating
  // per-chunk bookkeeping for half a billion phantom chunks.
  SketchConnectivity bank = populated_bank(18, 5400);
  ChunkOptions copt;
  copt.vertices_per_chunk = 9;
  auto chunks = encode_bank_chunks(bank, copt);
  put_u32_at(chunks[0], kChunkBlockOffset + 8, 1u << 29);
  reseal(chunks[0]);
  BankAssembler assembler(bank.num_vertices(), bank.options());
  try {
    (void)assembler.add_chunk(chunks[0]);
    FAIL() << "forged chunk_count accepted";
  } catch (const SketchIoError& e) {
    EXPECT_NE(std::string(e.what()).find("chunk_count"), std::string::npos) << e.what();
  }
}

TEST(SketchIo, SecondLegacyWholeBankIsAnErrorNotADuplicate) {
  // Pre-v3 buffers carry no source identity, so two distinct shards' v1/v2
  // banks look like retransmissions of each other. Dropping the second
  // would silently lose a shard's contribution — it must throw instead
  // (v3 whole-bank chunks with distinct source ids are the supported path).
  const int n = 14;
  SketchOptions opt;
  opt.seed = 5500;
  SketchConnectivity a(n, opt), b(n, opt);
  a.update(0, 1, 1);
  b.update(2, 3, 1);
  BankAssembler assembler(n, opt);
  EXPECT_TRUE(assembler.add_chunk(as_v1(encode_bank(a))));
  EXPECT_THROW((void)assembler.add_chunk(as_v1(encode_bank(b))), SketchIoError);
  EXPECT_THROW((void)assembler.add_chunk(as_v2(encode_bank(b))), SketchIoError);
  // The ambiguity is symmetric: after a legacy whole bank claimed implied
  // source 0, a genuine v3 whole-bank chunk under source 0 is equally
  // indistinguishable from a retransmission and must throw, not be dropped.
  ChunkOptions whole;
  whole.vertices_per_chunk = n;
  EXPECT_THROW((void)assembler.add_chunk(encode_bank_chunks(b, whole)[0]), SketchIoError);
  // ...and a legacy bank arriving *after* a v3 whole bank throws too.
  BankAssembler v3_first(n, opt);
  EXPECT_TRUE(v3_first.add_chunk(encode_bank_chunks(a, whole)[0]));
  EXPECT_THROW((void)v3_first.add_chunk(as_v2(encode_bank(b))), SketchIoError);
  // A *true* v3 retransmission stays idempotent.
  BankAssembler v3(n, opt);
  const auto chunk = encode_bank_chunks(a, {});
  EXPECT_TRUE(v3.add_chunk(chunk[0]));
  EXPECT_FALSE(v3.add_chunk(chunk[0]));
}

TEST(SketchIo, RejectedChunkLeavesAssemblerUnchanged) {
  // A validly-checksummed but inconsistent chunk (claims to be a complete
  // single-chunk source while covering a partial range, and carries a
  // nonzero cursor) must be rejected without poisoning anything — the
  // cursor, the source roster, and the bank must all stay pristine so
  // healthy workers' streams still assemble afterwards.
  SketchConnectivity used = populated_bank(18, 5600);
  (void)used.spanning_forest();
  ASSERT_GT(used.copies_used(), 0);
  ChunkOptions copt;
  copt.vertices_per_chunk = 7;  // 3 chunks
  auto forged = encode_bank_chunks(used, copt);
  put_u32_at(forged[0], kChunkBlockOffset + 8, 1);  // claim chunk_count 1, range stays [0,7)
  reseal(forged[0]);
  const SketchConnectivity fresh = populated_bank(18, 5600);  // same options, cursor 0

  BankAssembler assembler(18, used.options());
  EXPECT_THROW((void)assembler.add_chunk(forged[0]), SketchIoError);
  EXPECT_EQ(assembler.sources_seen(), 0u);
  EXPECT_EQ(assembler.chunks_received(), 0u);
  for (const auto& c : encode_bank_chunks(fresh, copt)) EXPECT_TRUE(assembler.add_chunk(c));
  ASSERT_TRUE(assembler.complete());
  EXPECT_EQ(encode_bank(assembler.take()), encode_bank(fresh));
}

TEST(SketchIo, ChunkedBankPreservesCursor) {
  // A bank shipped mid-recovery (copies consumed) chunks and reassembles
  // with its recovery cursor intact.
  SketchConnectivity bank = populated_bank(20, 5200);
  (void)bank.spanning_forest();
  ASSERT_GT(bank.copies_used(), 0);
  ChunkOptions copt;
  copt.vertices_per_chunk = 6;
  BankAssembler assembler(bank.num_vertices(), bank.options());
  for (const auto& c : encode_bank_chunks(bank, copt)) assembler.add_chunk(c);
  ASSERT_TRUE(assembler.complete());
  const SketchConnectivity back = assembler.take();
  EXPECT_EQ(back.copies_used(), bank.copies_used());
  EXPECT_EQ(encode_bank(back), encode_bank(bank));
}

}  // namespace
}  // namespace deck
