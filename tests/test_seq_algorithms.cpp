#include <gtest/gtest.h>

#include <algorithm>

#include "graph/block_forest.hpp"
#include "graph/bridges.hpp"
#include "graph/dinic.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/mst_seq.hpp"
#include "graph/stoer_wagner.hpp"
#include "support/rng.hpp"

namespace deck {
namespace {

std::vector<char> all_edges(const Graph& g) {
  return std::vector<char>(static_cast<std::size_t>(g.num_edges()), 1);
}

TEST(Kruskal, MatchesKnownMst) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(2, 3, 3);
  g.add_edge(3, 0, 4);
  g.add_edge(0, 2, 5);
  const auto mst = kruskal_mst(g);
  ASSERT_EQ(mst.size(), 3u);
  EXPECT_EQ(mst[0], 0);
  EXPECT_EQ(mst[1], 1);
  EXPECT_EQ(mst[2], 2);
}

TEST(Kruskal, TieBreakByEdgeId) {
  Graph g(3);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 5);
  g.add_edge(2, 0, 5);
  const auto mst = kruskal_mst(g);
  EXPECT_EQ(mst, (std::vector<EdgeId>{0, 1}));
}

TEST(KruskalFilter, RespectsBaseComponents) {
  Graph g(4);
  const EdgeId a = g.add_edge(0, 1, 1);
  const EdgeId b = g.add_edge(2, 3, 1);
  const EdgeId c = g.add_edge(1, 2, 1);
  const EdgeId d = g.add_edge(0, 3, 1);
  // Base {a, b}: candidates c, d — only one can join (they close a cycle).
  const auto joined = kruskal_filter(g, {a, b}, {d, c});
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0], c);  // canonical order: same weight, smaller id first
}

TEST(Bridges, FindsTheOnlyBridge) {
  // Two triangles joined by one edge.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  const EdgeId bridge = g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  const BridgeInfo info = find_bridges(g);
  ASSERT_EQ(info.bridges.size(), 1u);
  EXPECT_EQ(info.bridges[0], bridge);
  EXPECT_EQ(info.num_blocks, 2);
  EXPECT_TRUE(is_two_edge_connected(g, all_edges(g)) == false);
}

TEST(Bridges, TreeIsAllBridges) {
  Graph g(5);
  for (int i = 1; i < 5; ++i) g.add_edge(0, i);
  EXPECT_EQ(find_bridges(g).bridges.size(), 4u);
}

TEST(Bridges, CycleHasNone) {
  Graph g = circulant(8, 1);
  EXPECT_TRUE(find_bridges(g).bridges.empty());
}

TEST(BlockForest, CoverageCounting) {
  // Path of three triangles: coverage between far blocks crosses 2 bridges.
  Graph g(9);
  auto tri = [&](int a, int b, int c) {
    g.add_edge(a, b);
    g.add_edge(b, c);
    g.add_edge(c, a);
  };
  tri(0, 1, 2);
  tri(3, 4, 5);
  tri(6, 7, 8);
  g.add_edge(2, 3);
  g.add_edge(5, 6);
  BlockForest bf(g, all_edges(g));
  EXPECT_EQ(bf.num_blocks(), 3);
  EXPECT_EQ(bf.num_bridges_covered_by(0, 8), 2);
  EXPECT_EQ(bf.num_bridges_covered_by(0, 1), 0);
  EXPECT_EQ(bf.bridges_covered_by(1, 4).size(), 1u);
}

TEST(Dinic, SimpleMaxFlow) {
  Dinic d(4);
  d.add_arc(0, 1, 3);
  d.add_arc(0, 2, 2);
  d.add_arc(1, 3, 2);
  d.add_arc(2, 3, 3);
  d.add_arc(1, 2, 5);
  EXPECT_EQ(d.max_flow(0, 3), 5);
}

TEST(Dinic, StEdgeConnectivityOnCycle) {
  Graph g = circulant(10, 1);
  EXPECT_EQ(st_edge_connectivity(g, all_edges(g), 0, 5), 2);
}

TEST(EdgeConnectivity, MatchesStructuredFamilies) {
  EXPECT_EQ(edge_connectivity(circulant(9, 1)), 2);
  EXPECT_EQ(edge_connectivity(hypercube(3)), 3);
  EXPECT_EQ(edge_connectivity(torus(3, 4)), 4);
}

TEST(EdgeConnectivity, IsKEdgeConnectedBoundaries) {
  Graph g = hypercube(3);
  EXPECT_TRUE(is_k_edge_connected(g, 3));
  EXPECT_FALSE(is_k_edge_connected(g, 4));
  EXPECT_TRUE(is_k_edge_connected_subset(g, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, 1) ||
              true);  // mask helper exercised below
  const auto mask = edge_mask(g, {0, 1});
  EXPECT_EQ(std::count(mask.begin(), mask.end(), 1), 2);
}

TEST(StoerWagner, AgreesWithDinicOnRandomGraphs) {
  Rng rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    Graph g = random_kec(14, 2, 8, rng);
    const auto sw = stoer_wagner_min_cut(g);
    EXPECT_EQ(sw.value, edge_connectivity(g)) << "trial " << trial;
    // The witness side must actually cut sw.value edges.
    int crossing = 0;
    for (const Edge& e : g.edges())
      if (sw.side[static_cast<std::size_t>(e.u)] != sw.side[static_cast<std::size_t>(e.v)])
        ++crossing;
    EXPECT_EQ(crossing, sw.value);
  }
}

}  // namespace
}  // namespace deck
