#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/union_find.hpp"
#include "sketch/shard.hpp"
#include "sketch/sketch_connectivity.hpp"
#include "sketch/sketch_io.hpp"
#include "sketch/stream.hpp"
#include "sketch_test_util.hpp"
#include "support/rng.hpp"

namespace deck {
namespace {

SketchConnectivity ingested_bank(const GraphStream& s, const SketchOptions& opt) {
  SketchConnectivity bank(s.num_vertices(), opt);
  for (const StreamUpdate& u : s.updates()) bank.update(u.u, u.v, u.insert ? 1 : -1);
  return bank;
}

TEST(ParallelRecovery, BitIdenticalToSequentialForEveryThreadCount) {
  // The tentpole property: parallel Borůvka-on-sketches recovery must be
  // *bit-identical* to the sequential path — same forests in the same order
  // AND the same post-recovery bank bytes (the peeled copies saw the same
  // erasures) — for every thread count.
  for (std::uint64_t seed : {5u, 19u}) {
    const GraphStream s = churned_stream(56, 2, seed);
    SketchOptions sopt;
    sopt.seed = 700 + seed;
    sopt.max_forests = 2;

    SketchConnectivity sequential = ingested_bank(s, sopt);
    const std::vector<std::uint8_t> ingested = encode_bank(sequential);
    const auto want = sequential.k_spanning_forests(2, {.threads = 1});
    const std::vector<std::uint8_t> want_bytes = encode_bank(sequential);

    for (int threads : {2, 4, 8}) {
      SketchConnectivity bank = decode_bank(ingested);
      const auto got = bank.k_spanning_forests(2, {.threads = threads});
      ASSERT_EQ(got.size(), want.size()) << "threads=" << threads;
      for (std::size_t f = 0; f < got.size(); ++f) {
        ASSERT_EQ(got[f].size(), want[f].size()) << "threads=" << threads;
        for (std::size_t i = 0; i < got[f].size(); ++i) {
          EXPECT_EQ(got[f][i].u, want[f][i].u) << "threads=" << threads;
          EXPECT_EQ(got[f][i].v, want[f][i].v) << "threads=" << threads;
        }
      }
      EXPECT_EQ(encode_bank(bank), want_bytes) << "threads=" << threads;
    }
  }
}

TEST(ParallelRecovery, SpanningForestMatchesAcrossThreads) {
  const GraphStream s = churned_stream(48, 2, 3);
  SketchOptions sopt;
  sopt.seed = 81;
  SketchConnectivity sequential = ingested_bank(s, sopt);
  const std::vector<SketchEdge> want = sequential.spanning_forest({.threads = 1});
  for (int threads : {2, 4, 8}) {
    SketchConnectivity bank = ingested_bank(s, sopt);
    const std::vector<SketchEdge> got = bank.spanning_forest({.threads = threads});
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].u, want[i].u);
      EXPECT_EQ(got[i].v, want[i].v);
    }
    EXPECT_EQ(bank.copies_used(), sequential.copies_used());
  }
}

TEST(ParallelRecovery, ShardedPipelineEndToEndParallel) {
  // Parallel ingestion + parallel recovery together: certificate identical
  // to the fully sequential pipeline.
  const GraphStream s = churned_stream(64, 3, 9);
  SketchOptions sopt;
  sopt.seed = 4100;
  const SparsifyResult want = sparsify_stream(s, 3, sopt);
  ShardOptions shopt;
  shopt.shards = 4;
  const SparsifyResult got = sharded_sparsify_stream(s, 3, sopt, shopt, {.threads = 4});
  EXPECT_EQ(sorted_pairs(got.forests), sorted_pairs(want.forests));
  ASSERT_EQ(got.certificate.num_edges(), want.certificate.num_edges());
  for (const Edge& e : want.certificate.edges()) EXPECT_TRUE(got.certificate.has_edge(e.u, e.v));
}

TEST(ParallelRecovery, StatsAccountForEveryRound) {
  const GraphStream s = churned_stream(40, 2, 7);
  SketchOptions sopt;
  sopt.seed = 321;
  sopt.max_forests = 2;
  SketchConnectivity bank = ingested_bank(s, sopt);
  const KForests r = bank.try_k_spanning_forests(2, {.threads = 2});
  ASSERT_TRUE(r.converged);
  // copies_used also counts the rotation to each forest's group boundary,
  // so it dominates the rounds that actually sampled.
  EXPECT_LE(r.stats.rounds, bank.copies_used());
  EXPECT_GE(r.stats.rounds, 1);
  EXPECT_EQ(static_cast<int>(r.stats.per_round.size()), r.stats.rounds);
  long long samples = 0, failures = 0;
  int merges = 0;
  for (const RoundStats& rs : r.stats.per_round) {
    EXPECT_GE(rs.components, 1);
    EXPECT_LE(rs.failures, rs.components);
    samples += rs.components;
    failures += rs.failures;
    merges += rs.merges;
  }
  EXPECT_EQ(samples, r.stats.samples);
  EXPECT_EQ(failures, r.stats.failures);
  std::size_t edges = 0;
  for (const auto& f : r.forests) edges += f.size();
  EXPECT_EQ(static_cast<std::size_t>(merges), edges);
}

TEST(ParallelRecovery, ResumeRequiresFreshBank) {
  const GraphStream s = churned_stream(24, 2, 1);
  SketchOptions sopt;
  sopt.seed = 11;
  SketchConnectivity bank = ingested_bank(s, sopt);
  (void)bank.spanning_forest();
  ASSERT_GT(bank.copies_used(), 0);
  const KForests prior;  // even an empty prior demands an unconsumed bank
  EXPECT_THROW((void)bank.try_k_spanning_forests(1, {}, &prior), std::logic_error);
}

TEST(ParallelRecovery, ResumeKeepsCompletedForestsVerbatim) {
  // Simulate a failed attempt by hand: recover one forest, declare the
  // second "failed" with a few of its edges, and resume on a fresh bank.
  // The completed forest must come back verbatim and the union must still
  // be a valid 2-certificate of the streamed graph.
  Rng rng(77);
  Graph g = random_kec(40, 2, 80, rng);
  const GraphStream s = GraphStream::from_graph(g, rng);
  SketchOptions sopt;
  sopt.seed = 1234;
  sopt.max_forests = 2;

  SketchConnectivity first = ingested_bank(s, sopt);
  KForests attempt = first.try_k_spanning_forests(2, {});
  ASSERT_TRUE(attempt.converged);
  ASSERT_EQ(attempt.forests.size(), 2u);
  // Truncate forest 2 to fake a mid-forest failure.
  KForests failed;
  failed.converged = false;
  failed.forests = attempt.forests;
  failed.forests[1].resize(failed.forests[1].size() / 2);

  SketchOptions retry_opt = sopt;
  retry_opt.seed = 4321;  // fresh randomness, as the adaptive loop would use
  retry_opt.max_forests = 1;
  SketchConnectivity second = ingested_bank(s, retry_opt);
  const KForests resumed = second.try_k_spanning_forests(2, {}, &failed);
  ASSERT_TRUE(resumed.converged);
  ASSERT_EQ(resumed.forests.size(), 2u);
  // Forest 1 carried verbatim.
  ASSERT_EQ(resumed.forests[0].size(), attempt.forests[0].size());
  for (std::size_t i = 0; i < resumed.forests[0].size(); ++i) {
    EXPECT_EQ(resumed.forests[0][i].u, attempt.forests[0][i].u);
    EXPECT_EQ(resumed.forests[0][i].v, attempt.forests[0][i].v);
  }
  // The carried partial prefix survives in forest 2.
  ASSERT_GE(resumed.forests[1].size(), failed.forests[1].size());
  // Union is edge-disjoint, real, and 2-edge-connected.
  auto pairs = sorted_pairs(resumed.forests);
  EXPECT_EQ(std::adjacent_find(pairs.begin(), pairs.end()), pairs.end());
  Graph cert(g.num_vertices());
  for (const auto& f : resumed.forests)
    for (const SketchEdge& e : f) {
      EXPECT_TRUE(g.has_edge(e.u, e.v));
      cert.add_edge(e.u, e.v, 1);
    }
  EXPECT_TRUE(is_k_edge_connected(cert, 2));
}

TEST(AutoSize, CertificateRemainsKEdgeConnected) {
  // The adaptive path must deliver the same guarantee as the fixed
  // worst-case sizing: <= k(n-1) real edges, k-edge-connected whenever the
  // input is, edge-disjoint forests — whatever sizing it settled on.
  for (int k : {2, 3}) {
    for (int n : {24, 48, 96}) {
      Rng rng(600 + n * k);
      Graph g = random_kec(n, k, n, rng);
      ASSERT_TRUE(is_k_edge_connected(g, k));
      GraphStream s = GraphStream::from_graph(g, rng);
      SketchOptions opt;
      opt.seed = 8100 + static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(k);
      opt.auto_size.enabled = true;
      const SparsifyResult r = sparsify_stream(s, k, opt);
      EXPECT_LE(r.certificate.num_edges(), k * (n - 1)) << "n=" << n << " k=" << k;
      EXPECT_TRUE(is_k_edge_connected(r.certificate, k)) << "n=" << n << " k=" << k;
      for (const Edge& e : r.certificate.edges()) EXPECT_TRUE(g.has_edge(e.u, e.v));
      auto pairs = sorted_pairs(r.forests);
      EXPECT_EQ(std::adjacent_find(pairs.begin(), pairs.end()), pairs.end());
      EXPECT_GE(r.attempts, 1);
      EXPECT_LE(r.attempts, opt.auto_size.max_attempts);
      EXPECT_GE(r.columns_used, opt.auto_size.initial_columns);
      // Spot-check the telemetry the policy acts on (copies_used includes
      // forest-group rotation, so it dominates the sampling rounds).
      EXPECT_GE(r.copies_used, r.stats.rounds);
      EXPECT_GE(r.stats.rounds, 1);
    }
  }
}

TEST(AutoSize, DeterministicGivenSeed) {
  const GraphStream s = churned_stream(40, 2, 13);
  SketchOptions opt;
  opt.seed = 2024;
  opt.auto_size.enabled = true;
  const SparsifyResult a = sparsify_stream(s, 2, opt);
  const SparsifyResult b = sparsify_stream(s, 2, opt);
  EXPECT_EQ(sorted_pairs(a.forests), sorted_pairs(b.forests));
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.columns_used, b.columns_used);
  EXPECT_EQ(a.rounds_slack_used, b.rounds_slack_used);
  EXPECT_EQ(a.copies_used, b.copies_used);
}

TEST(AutoSize, ShardedMatchesSequentialAdaptive) {
  // Shards must agree on every attempt's sizing: the sharded adaptive
  // pipeline re-ingests each attempt through apply_sharded with the same
  // derived options, so its result is identical to the sequential one.
  const GraphStream s = churned_stream(48, 2, 29);
  SketchOptions opt;
  opt.seed = 555;
  opt.auto_size.enabled = true;
  const SparsifyResult want = sparsify_stream(s, 2, opt);
  for (Sharding mode : {Sharding::kHash, Sharding::kDynamic}) {
    ShardOptions shopt;
    shopt.shards = 4;
    shopt.sharding = mode;
    const SparsifyResult got = sharded_sparsify_stream(s, 2, opt, shopt, {.threads = 2});
    EXPECT_EQ(sorted_pairs(got.forests), sorted_pairs(want.forests))
        << "mode=" << static_cast<int>(mode);
    EXPECT_EQ(got.attempts, want.attempts);
    EXPECT_EQ(got.columns_used, want.columns_used);
  }
}

TEST(AutoSize, UndersizedFirstAttemptStillConverges) {
  // Force attempt-0 failures with a pathologically small sizing; the
  // geometric growth must still land on a valid certificate.
  const GraphStream s = churned_stream(96, 2, 41);
  SketchOptions opt;
  opt.seed = 97;
  opt.auto_size.enabled = true;
  opt.auto_size.initial_columns = 1;
  opt.auto_size.initial_rounds_slack = 1;
  opt.auto_size.max_attempts = 8;
  const SparsifyResult r = sparsify_stream(s, 2, opt);
  const Graph net = s.materialize();
  EXPECT_LE(r.certificate.num_edges(), 2 * (s.num_vertices() - 1));
  EXPECT_TRUE(is_k_edge_connected(r.certificate, 2));
  for (const Edge& e : r.certificate.edges()) EXPECT_TRUE(net.has_edge(e.u, e.v));
}

TEST(AutoSize, PolicyTravelsThroughWireFormat) {
  SketchOptions opt;
  opt.seed = 7;
  opt.auto_size.enabled = true;
  opt.auto_size.initial_columns = 3;
  opt.auto_size.max_attempts = 4;
  const SketchConnectivity bank(16, opt);
  const SketchConnectivity back = decode_bank(encode_bank(bank));
  EXPECT_TRUE(back.compatible(bank));
  EXPECT_EQ(back.options().auto_size, opt.auto_size);

  // Policy mismatch breaks compatibility — shards disagreeing on sizing
  // must not merge.
  SketchOptions other = opt;
  other.auto_size.initial_columns = 2;
  const SketchConnectivity skewed(16, other);
  EXPECT_FALSE(skewed.compatible(bank));
  SketchConnectivity into(16, opt);
  EXPECT_THROW(into.merge(skewed), std::logic_error);
}

TEST(AutoSize, RejectsInvalidPolicy) {
  SketchOptions opt;
  opt.auto_size.growth = 1;  // would never grow — a configuration bug
  EXPECT_THROW(SketchConnectivity(8, opt), std::logic_error);
  opt.auto_size.growth = 2;
  opt.auto_size.max_attempts = 0;
  EXPECT_THROW(SketchConnectivity(8, opt), std::logic_error);
  opt.auto_size.max_attempts = 1;
  opt.auto_size.initial_columns = 0;
  EXPECT_THROW(SketchConnectivity(8, opt), std::logic_error);
}

}  // namespace
}  // namespace deck
