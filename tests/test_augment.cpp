// Tests for the standalone Aug API (distributed_augment): upgrading an
// arbitrary existing subgraph to a target edge connectivity (Claim 2.1
// building block exposed to downstream users).

#include <gtest/gtest.h>

#include <algorithm>

#include "congest/network.hpp"
#include "ecss/distributed_kecss.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/mst_seq.hpp"
#include "support/rng.hpp"

namespace deck {
namespace {

std::vector<EdgeId> unioned(const Graph& g, std::vector<EdgeId> a, const std::vector<EdgeId>& b) {
  (void)g;
  a.insert(a.end(), b.begin(), b.end());
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  return a;
}

TEST(Augment, FromEmptyMatchesTargets) {
  Rng rng(1);
  for (int k : {1, 2, 3}) {
    Graph g = with_weights(random_kec(20, k, 20, rng), WeightModel::kUniform, rng);
    Network net(g);
    const AugmentResult r = distributed_augment(net, {}, k, KecssOptions{});
    EXPECT_TRUE(is_k_edge_connected_subset(g, r.added, k)) << "k=" << k;
  }
}

TEST(Augment, FromSpanningTreeToTwoConnected) {
  Rng rng(2);
  Graph g = with_weights(random_kec(24, 2, 24, rng), WeightModel::kUniform, rng);
  const auto tree = kruskal_mst(g);
  Network net(g);
  const AugmentResult r = distributed_augment(net, tree, 2, KecssOptions{});
  const auto total = unioned(g, tree, r.added);
  EXPECT_TRUE(is_k_edge_connected_subset(g, total, 2));
  // Added edges are disjoint from the tree.
  for (EdgeId e : r.added) EXPECT_EQ(std::count(tree.begin(), tree.end(), e), 0);
}

TEST(Augment, FromTwoConnectedToThree) {
  Rng rng(3);
  Graph g = with_weights(random_kec(20, 3, 24, rng), WeightModel::kUniform, rng);
  // Existing H: a 2-ECSS found greedily (cycle backbone).
  Network pre(g);
  const AugmentResult base = distributed_augment(pre, {}, 2, KecssOptions{});
  ASSERT_TRUE(is_k_edge_connected_subset(g, base.added, 2));
  Network net(g);
  const AugmentResult r = distributed_augment(net, base.added, 3, KecssOptions{});
  EXPECT_TRUE(is_k_edge_connected_subset(g, unioned(g, base.added, r.added), 3));
}

TEST(Augment, NoOpWhenAlreadyAtTarget) {
  Rng rng(4);
  Graph g = with_weights(random_kec(16, 2, 16, rng), WeightModel::kUniform, rng);
  Network pre(g);
  const AugmentResult base = distributed_augment(pre, {}, 2, KecssOptions{});
  Network net(g);
  const AugmentResult r = distributed_augment(net, base.added, 2, KecssOptions{});
  EXPECT_TRUE(r.added.empty());
  EXPECT_EQ(r.added_weight, 0);
}

TEST(Augment, DisconnectedSeedGetsConnectedOptimally) {
  // H = two disjoint triangles; connector level must splice them with the
  // cheapest crossing edge (MST-forced choice).
  Graph g(6);
  std::vector<EdgeId> h;
  h.push_back(g.add_edge(0, 1, 1));
  h.push_back(g.add_edge(1, 2, 1));
  h.push_back(g.add_edge(2, 0, 1));
  h.push_back(g.add_edge(3, 4, 1));
  h.push_back(g.add_edge(4, 5, 1));
  h.push_back(g.add_edge(5, 3, 1));
  g.add_edge(0, 3, 9);
  const EdgeId cheap = g.add_edge(2, 3, 2);
  Network net(g);
  const AugmentResult r = distributed_augment(net, h, 1, KecssOptions{});
  ASSERT_EQ(r.added.size(), 1u);
  EXPECT_EQ(r.added[0], cheap);
}

TEST(Augment, SweepAcrossSeedsAlwaysReachesTarget) {
  for (int seed = 1; seed <= 5; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 101);
    Graph g = with_weights(random_kec(18, 3, 18, rng), WeightModel::kUniform, rng);
    // Random existing subgraph: every edge with probability 1/3.
    std::vector<EdgeId> h;
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      if (rng.next_below(3) == 0) h.push_back(e);
    Network net(g);
    KecssOptions opt;
    opt.seed = static_cast<std::uint64_t>(seed);
    const AugmentResult r = distributed_augment(net, h, 3, opt);
    EXPECT_TRUE(is_k_edge_connected_subset(g, unioned(g, h, r.added), 3)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace deck
