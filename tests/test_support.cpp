#include <gtest/gtest.h>

#include <set>

#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace deck {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto x = a(), y = b();
    EXPECT_EQ(x, y);
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i)
    if (a2() != c()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Rng, NextBelowIsInRangeAndCoversValues) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.next_below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextInBounds) {
  Rng r(9);
  for (int i = 0; i < 500; ++i) {
    const auto v = r.next_in(-5, 5);
    ASSERT_GE(v, -5);
    ASSERT_LE(v, 5);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 500; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Mix64, InjectiveOnSmallRange) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 4096; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 4096u);
}

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_EQ(s.count, 4u);
}

TEST(Stats, LogLogSlopeRecoversExponent) {
  std::vector<double> x, y;
  for (double v : {8.0, 16.0, 32.0, 64.0, 128.0}) {
    x.push_back(v);
    y.push_back(3.0 * v * v);  // exponent 2
  }
  EXPECT_NEAR(loglog_slope(x, y), 2.0, 1e-9);
}

TEST(Table, RendersAllCells) {
  Table t({"a", "bb"});
  t.add(1, "x");
  t.add(2.5, std::string("y"));
  const std::string s = t.to_string("demo");
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_NE(s.find("2.500"), std::string::npos);
}

}  // namespace
}  // namespace deck
