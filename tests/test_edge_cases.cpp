// Boundary and adversarial-structure coverage for the headline algorithms:
// smallest legal inputs, stars-with-rings, caterpillar-heavy trees, skewed
// weights, dense graphs, and degenerate decompositions.

#include <gtest/gtest.h>

#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "ecss/distributed_2ecss.hpp"
#include "ecss/distributed_3ecss.hpp"
#include "ecss/distributed_kecss.hpp"
#include "ecss/exact.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"
#include "tap/seq_tap.hpp"
#include "tap/tap_instance.hpp"

namespace deck {
namespace {

TEST(EdgeCases, TriangleIsItsOwn2Ecss) {
  Graph g(3);
  g.add_edge(0, 1, 3);
  g.add_edge(1, 2, 4);
  g.add_edge(2, 0, 5);
  Network net(g);
  const Ecss2Result r = distributed_2ecss(net, TapOptions{});
  EXPECT_EQ(r.edges.size(), 3u);
  EXPECT_EQ(r.weight, 12);
}

TEST(EdgeCases, FourCycleWithChords) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 1);
  g.add_edge(3, 0, 1);
  g.add_edge(0, 2, 100);
  g.add_edge(1, 3, 100);
  Network net(g);
  const Ecss2Result r = distributed_2ecss(net, TapOptions{});
  ASSERT_TRUE(is_k_edge_connected_subset(g, r.edges, 2));
  // The plain cycle (weight 4) is optimal; O(log n) approx must avoid the
  // chords here because cost-effectiveness strongly prefers cheap edges.
  EXPECT_EQ(r.weight, 4);
}

TEST(EdgeCases, StarOfRings) {
  // Rings of size 4 sharing a single hub vertex: many segments rooted at
  // the same marked vertex, exercising the (v,v)-segment rule.
  const int rings = 5, len = 4;
  Graph g(1 + rings * (len - 1));
  for (int r = 0; r < rings; ++r) {
    const int base = 1 + r * (len - 1);
    VertexId prev = 0;
    for (int i = 0; i < len - 1; ++i) {
      g.add_edge(prev, base + i, 1 + r + i);
      prev = static_cast<VertexId>(base + i);
    }
    g.add_edge(prev, 0, 1);
  }
  ASSERT_TRUE(is_k_edge_connected(g, 2));
  Network net(g);
  const Ecss2Result r = distributed_2ecss(net, TapOptions{});
  EXPECT_TRUE(is_k_edge_connected_subset(g, r.edges, 2));
}

TEST(EdgeCases, CaterpillarTap) {
  // A path tree with leaves hanging off each spine vertex plus a cheap
  // backbone link set: deep anc-paths with hanging segments.
  const int spine = 12;
  Graph g(2 * spine);
  std::vector<EdgeId> tree;
  for (int i = 0; i + 1 < spine; ++i) tree.push_back(g.add_edge(i, i + 1, 1));
  for (int i = 0; i < spine; ++i) tree.push_back(g.add_edge(i, spine + i, 1));
  // Links: leaf-to-leaf hops and one long link.
  for (int i = 0; i + 1 < spine; ++i) g.add_edge(spine + i, spine + i + 1, 2);
  g.add_edge(spine, 2 * spine - 1, 3);
  TapInstance inst = make_tap_instance(g, tree, 0);
  ASSERT_TRUE(inst.covers_all(inst.links()));
  Network net(inst.g);
  const TapResult r = distributed_tap_standalone(net, inst, TapOptions{});
  EXPECT_TRUE(inst.covers_all(r.augmentation));
}

TEST(EdgeCases, ExtremeWeightSkew) {
  // Weights spanning the full polynomial range exercise the O(log n)
  // cost-effectiveness levels.
  Rng rng(13);
  Graph topo = random_kec(32, 2, 40, rng);
  Graph g(topo.num_vertices());
  for (EdgeId e = 0; e < topo.num_edges(); ++e) {
    const Weight w = (e % 7 == 0) ? 1 : (e % 3 == 0 ? 1000 : 30);
    g.add_edge(topo.edge(e).u, topo.edge(e).v, w);
  }
  Network net(g);
  const Ecss2Result r = distributed_2ecss(net, TapOptions{});
  EXPECT_TRUE(is_k_edge_connected_subset(g, r.edges, 2));
}

TEST(EdgeCases, DenseGraphKecss) {
  // Near-complete graph: Theta(n^2) candidate edges.
  const int n = 14;
  Rng rng(5);
  Graph g(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v)
      g.add_edge(u, v, 1 + static_cast<Weight>(rng.next_below(20)));
  Network net(g);
  const KecssResult r = distributed_kecss(net, 4, KecssOptions{});
  EXPECT_TRUE(is_k_edge_connected_subset(g, r.edges, 4));
  EXPECT_LT(static_cast<int>(r.edges.size()), g.num_edges());
}

TEST(EdgeCases, K4IsItsOwn3Ecss) {
  Graph g(4);
  for (VertexId u = 0; u < 4; ++u)
    for (VertexId v = u + 1; v < 4; ++v) g.add_edge(u, v, 1);
  Network net(g);
  const Ecss3Result r = distributed_3ecss_unweighted(net, Ecss3Options{});
  EXPECT_TRUE(is_k_edge_connected_subset(g, r.edges, 3));
  EXPECT_EQ(r.size, 6);  // K4 is minimally 3-edge-connected
}

TEST(EdgeCases, TapWithAllZeroWeights) {
  Rng rng(9);
  TapInstance inst = random_tap_instance(16, 8, 1, rng);
  Graph zeroed(inst.g.num_vertices());
  for (EdgeId e = 0; e < inst.g.num_edges(); ++e) {
    const bool is_tree = inst.tree_mask[static_cast<std::size_t>(e)];
    zeroed.add_edge(inst.g.edge(e).u, inst.g.edge(e).v, is_tree ? inst.g.edge(e).w : 0);
  }
  TapInstance zinst = make_tap_instance(zeroed, inst.tree_edges, 0);
  Network net(zinst.g);
  const TapResult r = distributed_tap_standalone(net, zinst, TapOptions{});
  EXPECT_TRUE(zinst.covers_all(r.augmentation));
  EXPECT_EQ(r.weight, 0);
}

TEST(EdgeCases, ExactSolversOnMinimalInstances) {
  // K4 with distinct weights: exact 2-ECSS is the cheapest Hamilton cycle.
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(2, 3, 3);
  g.add_edge(3, 0, 4);
  g.add_edge(0, 2, 10);
  g.add_edge(1, 3, 10);
  const auto opt = exact_kecss(g, 2);
  Weight w = 0;
  for (EdgeId e : opt) w += g.edge(e).w;
  EXPECT_EQ(w, 10);  // cycle 0-1-2-3
}

TEST(EdgeCases, PrimitivesOnTwoVertexGraphNeedNoPipeline) {
  Graph g(2);
  g.add_edge(0, 1, 1);
  Network net(g);
  const RootedTree t = distributed_bfs(net, 0);
  EXPECT_EQ(t.height(), 1);
  const CommForest f = CommForest::from_tree(t);
  std::vector<std::uint64_t> val{5, 7};
  const auto acc =
      convergecast(net, f, val, CombineOp::kSum);
  EXPECT_EQ(acc[0], 12u);
}

}  // namespace
}  // namespace deck
