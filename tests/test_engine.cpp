#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "congest/distributed_engine.hpp"
#include "congest/engine.hpp"
#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "congest/programs.hpp"
#include "ecss/distributed_2ecss.hpp"
#include "ecss/distributed_3ecss.hpp"
#include "ecss/distributed_kecss.hpp"
#include "graph/generators.hpp"
#include "mst/distributed_mst.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "tap/distributed_tap.hpp"
#include "tap/tap_instance.hpp"

namespace deck {
namespace {

// The engine-identity property: every backend — sequential, thread-pool for
// any thread count, Transport-backed for any worker count — produces
// bit-identical algorithm outputs and identical round/message counters,
// phase by phase.

struct RunRecord {
  std::vector<EdgeId> edges;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> phase_costs;

  friend bool operator==(const RunRecord&, const RunRecord&) = default;
};

RunRecord record(Network& net, std::vector<EdgeId> edges) {
  RunRecord r;
  r.edges = std::move(edges);
  r.rounds = net.rounds();
  r.messages = net.messages();
  for (const auto& p : net.phases()) r.phase_costs.emplace_back(p.rounds, p.messages);
  return r;
}

template <typename Algo>
void expect_engine_identity(const Graph& g, Algo&& algo, const char* what) {
  RunRecord base;
  {
    Network net(g);  // default = sequential
    base = record(net, algo(net));
    EXPECT_EQ(net.hub()->name(), "seq");
  }
  for (int threads : {1, 2, 4, 8}) {
    Network net(g, EngineHub::parallel(threads));
    const RunRecord got = record(net, algo(net));
    EXPECT_EQ(got, base) << what << ": pool engine with " << threads << " threads diverged";
  }
  for (int workers : {1, 2, 4}) {
    {
      // Default config = the v4 hot path: delta frames + comm pipelining.
      CongestWorkerFleet fleet(workers);
      Network net(g, fleet.hub());
      const RunRecord got = record(net, algo(net));
      EXPECT_EQ(got, base) << what << ": net engine with " << workers << " workers diverged";
    }
    {
      // The synchronous v3-style loop: delta + pipelining off, pooled
      // stepping — the opposite corner of the config space.
      FleetOptions fo;
      fo.hub.delta_frames = false;
      fo.worker.pipeline = false;
      fo.worker.threads = 2;
      CongestWorkerFleet fleet(workers, fo);
      Network net(g, fleet.hub());
      const RunRecord got = record(net, algo(net));
      EXPECT_EQ(got, base) << what << ": net engine (delta/pipeline off, threads 2) with "
                           << workers << " workers diverged";
    }
  }
}

Graph weighted_graph(int n, int k, std::uint64_t seed) {
  Rng rng(seed);
  return with_weights(random_kec(n, k, n, rng), WeightModel::kUniform, rng);
}

TEST(EngineIdentity, Ecss2PipelineBitIdenticalAcrossBackends) {
  const Graph g = weighted_graph(48, 2, 9001);
  expect_engine_identity(
      g,
      [](Network& net) {
        const Ecss2Result r = distributed_2ecss(net, TapOptions{});
        return r.edges;
      },
      "2-ecss");
}

TEST(EngineIdentity, KecssPipelineBitIdenticalAcrossBackends) {
  const Graph g = weighted_graph(28, 3, 9002);
  expect_engine_identity(
      g,
      [](Network& net) {
        KecssOptions opt;
        opt.seed = 7;
        const KecssResult r = distributed_kecss(net, 3, opt);
        return r.edges;
      },
      "k-ecss");
}

TEST(EngineIdentity, Unweighted3EcssBitIdenticalAcrossBackends) {
  Rng rng(9003);
  const Graph g = random_kec(32, 3, 32, rng);
  expect_engine_identity(
      g,
      [](Network& net) {
        Ecss3Options opt;
        opt.seed = 5;
        const Ecss3Result r = distributed_3ecss_unweighted(net, opt);
        return r.edges;
      },
      "3-ecss");
}

TEST(EngineIdentity, MstBitIdenticalAcrossBackends) {
  const Graph g = weighted_graph(56, 2, 9004);
  expect_engine_identity(
      g,
      [](Network& net) {
        const RootedTree bfs = distributed_bfs(net, 0);
        MstResult mst = distributed_mst(net, bfs);
        return mst.mst_edges;
      },
      "mst");
}

TEST(EngineIdentity, TapBitIdenticalAcrossBackends) {
  Rng rng(9005);
  TapInstance inst = random_tap_instance(36, 24, 1, rng);
  expect_engine_identity(
      inst.g,
      [&inst](Network& net) {
        const TapResult r = distributed_tap_standalone(net, inst, TapOptions{});
        return r.augmentation;
      },
      "tap");
}

TEST(EngineIdentity, PrimitivesBitIdenticalAcrossBackends) {
  // Primitive-level identity on one graph: BFS + every forest flow, with
  // counters compared per phase.
  const Graph g = weighted_graph(40, 2, 9006);
  expect_engine_identity(
      g,
      [](Network& net) {
        const int n = net.n();
        net.begin_phase("bfs");
        const RootedTree t = distributed_bfs(net, 0);
        const CommForest f = CommForest::from_tree(t);

        net.begin_phase("convergecast");
        std::vector<std::uint64_t> ones(static_cast<std::size_t>(n), 1);
        const auto sums = convergecast(net, f, ones, CombineOp::kSum);

        net.begin_phase("broadcast");
        std::vector<std::uint64_t> val(static_cast<std::size_t>(n), 0);
        val[0] = sums[0];
        broadcast(net, f, val);

        net.begin_phase("upcast");
        std::vector<std::vector<KeyedItem>> items(static_cast<std::size_t>(n));
        for (VertexId v = 0; v < n; ++v)
          items[static_cast<std::size_t>(v)].push_back(
              KeyedItem{static_cast<std::uint64_t>(v % 5), static_cast<std::uint64_t>(200 - v),
                        static_cast<std::uint64_t>(v)});
        auto fin = keyed_min_upcast(net, f, std::move(items));

        net.begin_phase("pipelined_broadcast");
        std::vector<std::vector<KeyedItem>> root_items(static_cast<std::size_t>(n));
        root_items[0] = fin[0];
        pipelined_broadcast(net, f, std::move(root_items));

        net.begin_phase("path_downcast");
        std::vector<KeyedItem> own(static_cast<std::size_t>(n));
        for (VertexId v = 0; v < n; ++v)
          own[static_cast<std::size_t>(v)] =
              KeyedItem{static_cast<std::uint64_t>(v), 0, 0};
        auto paths = path_downcast(net, f, own);

        net.begin_phase("edge_exchange");
        std::vector<EdgeId> ex;
        std::vector<std::vector<std::uint64_t>> fu, fv;
        for (EdgeId e = 0; e < net.graph().num_edges(); e += 3) {
          ex.push_back(e);
          fu.push_back({static_cast<std::uint64_t>(e), 1});
          fv.push_back({static_cast<std::uint64_t>(e) + 7});
        }
        const ExchangeResult xr = edge_exchange(net, ex, fu, fv);

        // Fold every output into an edge list so RunRecord comparison sees
        // all of it.
        std::vector<EdgeId> digest;
        for (VertexId v = 0; v < n; ++v) {
          digest.push_back(t.parent_edge(v));
          digest.push_back(static_cast<EdgeId>(sums[static_cast<std::size_t>(v)] & 0xffff));
          for (const auto& it : paths[static_cast<std::size_t>(v)])
            digest.push_back(static_cast<EdgeId>(it.key));
        }
        for (const auto& ws : xr.at_u)
          for (auto w : ws) digest.push_back(static_cast<EdgeId>(w & 0xffff));
        return digest;
      },
      "primitives");
}

TEST(EngineIdentity, NetHotPathConfigMatrixBitIdentical) {
  // The full delta × pipeline × worker-threads × workers matrix on the
  // 2-ECSS pipeline: every round hot-path config must reproduce the
  // sequential run bit for bit, counters included.
  const Graph g = weighted_graph(32, 2, 9010);
  const auto algo = [](Network& net) {
    const Ecss2Result r = distributed_2ecss(net, TapOptions{});
    return r.edges;
  };
  RunRecord base;
  {
    Network net(g);
    base = record(net, algo(net));
  }
  for (const bool delta : {false, true})
    for (const bool pipeline : {false, true})
      for (const int threads : {1, 2, 4})
        for (const int workers : {1, 2, 4}) {
          FleetOptions fo;
          fo.hub.delta_frames = delta;
          fo.worker.pipeline = pipeline;
          fo.worker.threads = threads;
          CongestWorkerFleet fleet(workers, fo);
          Network net(g, fleet.hub());
          const RunRecord got = record(net, algo(net));
          EXPECT_EQ(got, base) << "2-ecss: net engine diverged at delta=" << delta
                               << " pipeline=" << pipeline << " threads=" << threads
                               << " workers=" << workers;
        }
}

TEST(EngineIdentity, NetWorkersShareACallerOwnedPool) {
  // WorkerOptions::pool: every fleet worker steps on one caller-owned
  // ThreadPool — pool×net composition without per-worker pools.
  const Graph g = weighted_graph(40, 2, 9011);
  const auto algo = [](Network& net) {
    const RootedTree t = distributed_bfs(net, 0);
    MstResult mst = distributed_mst(net, t);
    return mst.mst_edges;
  };
  RunRecord base;
  {
    Network net(g);
    base = record(net, algo(net));
  }
  ThreadPool pool(3);
  FleetOptions fo;
  fo.worker.pool = &pool;
  CongestWorkerFleet fleet(3, fo);
  {
    Network net(g, fleet.hub());
    EXPECT_EQ(record(net, algo(net)), base);
  }
}

// ---------------------------------------------------------------------------
// Distributed-engine protocol details and fault paths.

TEST(EngineIdentity, PoolHubBorrowsAnExternalThreadPool) {
  // EngineHub::parallel(ThreadPool*) shares a caller-owned pool instead of
  // spawning one — same results, same counters.
  const Graph g = weighted_graph(32, 2, 9007);
  const auto algo = [](Network& net) {
    const RootedTree t = distributed_bfs(net, 0);
    std::vector<EdgeId> digest;
    for (VertexId v = 0; v < net.n(); ++v) digest.push_back(t.parent_edge(v));
    return digest;
  };
  RunRecord base;
  {
    Network net(g);
    base = record(net, algo(net));
  }
  ThreadPool pool(3);
  Network net(g, EngineHub::parallel(&pool));
  EXPECT_EQ(record(net, algo(net)), base);
}

TEST(DistributedEngine, SubNetworksInheritTheHubAcrossLayers) {
  // k-ECSS builds internal sub-Networks (connector levels); with a worker
  // fleet those must execute on the same fleet — this runs end-to-end and
  // agrees with the sequential run.
  const Graph g = weighted_graph(20, 2, 9007);
  KecssOptions opt;
  opt.seed = 3;
  Network seq(g);
  const KecssResult base = distributed_kecss(seq, 2, opt);
  CongestWorkerFleet fleet(2);
  {
    Network net(g, fleet.hub());
    const KecssResult got = distributed_kecss(net, 2, opt);
    EXPECT_EQ(got.edges, base.edges);
    EXPECT_EQ(net.rounds(), seq.rounds());
    EXPECT_EQ(net.messages(), seq.messages());
  }
}

TEST(DistributedEngine, WorkerRejectsGarbageCoordinator) {
  {  // first message is not a recognized type
    auto [c, w] = loopback_pair();
    std::vector<std::uint8_t> junk;
    net::put_u32(junk, 0xdeadbeef);
    c->send(junk);
    std::thread drain([&c] { (void)c->recv(); });  // swallow the Hello
    EXPECT_THROW(run_congest_worker(*w), NetError);
    c->close();
    drain.join();
  }
  {  // Start for a graph that was never loaded
    auto [c, w] = loopback_pair();
    std::vector<std::uint8_t> start;
    net::put_u32(start, static_cast<std::uint32_t>(CongestMsg::kStart));
    net::put_u32(start, 42);  // unknown graph id
    net::put_u32(start, 1);
    c->send(start);
    std::thread drain([&c] { (void)c->recv(); });
    EXPECT_THROW(run_congest_worker(*w), NetError);
    c->close();
    drain.join();
  }
  {  // truncated LoadGraph
    auto [c, w] = loopback_pair();
    std::vector<std::uint8_t> load;
    net::put_u32(load, static_cast<std::uint32_t>(CongestMsg::kLoadGraph));
    net::put_u32(load, 1);
    net::put_u32(load, 8);        // n
    net::put_u32(load, 1000000);  // m far beyond the frame
    c->send(load);
    std::thread drain([&c] { (void)c->recv(); });
    EXPECT_THROW(run_congest_worker(*w), NetError);
    c->close();
    drain.join();
  }
}

TEST(DistributedEngine, CoordinatorRejectsBadHello) {
  {  // wrong opener
    auto [c, w] = loopback_pair();
    std::vector<std::uint8_t> junk;
    net::put_u32(junk, static_cast<std::uint32_t>(CongestMsg::kRoundDone));
    w->send(junk);
    std::vector<Transport*> raw{c.get()};
    EXPECT_THROW(make_distributed_hub(raw), NetError);
  }
  {  // protocol version mismatch
    auto [c, w] = loopback_pair();
    std::vector<std::uint8_t> hello;
    net::put_u32(hello, static_cast<std::uint32_t>(CongestMsg::kHello));
    net::put_u32(hello, kCongestProtoVersion + 9);
    w->send(hello);
    std::vector<Transport*> raw{c.get()};
    EXPECT_THROW(make_distributed_hub(raw), NetError);
  }
  {  // worker dies before Hello
    auto [c, w] = loopback_pair();
    w->close();
    std::vector<Transport*> raw{c.get()};
    EXPECT_THROW(make_distributed_hub(raw), NetError);
  }
}

TEST(DistributedEngine, ProgramInvariantFailureOnAFleetIsATypedError) {
  // A DECK_CHECK tripping inside a fleet worker (here: BFS on a
  // disconnected graph) must surface as a catchable NetError on the
  // coordinator, not std::terminate the host process.
  Graph g(4);
  g.add_edge(0, 1);  // vertices 2 and 3 unreachable
  CongestWorkerFleet fleet(2);
  {
    Network net(g, fleet.hub());
    EXPECT_THROW((void)distributed_bfs(net, 0), NetError);
  }
}

TEST(DistributedEngine, MalformedProgramSpecIsATypedError) {
  // A Start whose spec names an out-of-range edge id (or forest parent)
  // must raise NetError on the worker, never index the graph out of
  // bounds.
  auto [c, w] = loopback_pair();
  std::thread worker([t = std::shared_ptr<Transport>(std::move(w))] {
    EXPECT_THROW(run_congest_worker(*t), NetError);
  });
  std::vector<std::uint8_t> load;
  net::put_u32(load, static_cast<std::uint32_t>(CongestMsg::kLoadGraph));
  net::put_u32(load, 1);  // graph id
  net::put_u32(load, 2);  // n
  net::put_u32(load, 1);  // m
  net::put_u32(load, 0);  // edge 0: (0, 1, w=1)
  net::put_u32(load, 1);
  net::put_u64(load, 1);
  net::put_u32(load, 0);  // owned range [0, 2)
  net::put_u32(load, 2);
  c->send(load);
  std::vector<std::uint8_t> start;
  net::put_u32(start, static_cast<std::uint32_t>(CongestMsg::kStart));
  net::put_u32(start, 1);  // graph id
  net::put_u32(start, static_cast<std::uint32_t>(ProgramId::kEdgeExchange));
  net::put_u32(start, 1);  // node id
  net::put_u32(start, 0);  // trace flags: off
  net::put_u64(start, 0);  // trace id
  net::put_u64(start, 0);  // parent span
  net::put_u32(start, 0);  // execution flags: delta off
  net::put_u32(start, 0);  // checkpoint interval
  net::put_u32(start, 2);   // n
  net::put_u32(start, 1);   // one edge
  net::put_u32(start, 99);  // ...whose id does not exist
  net::put_u32(start, 1);   // from_u: one word
  net::put_u64(start, 7);
  net::put_u32(start, 0);  // from_v: empty
  c->send(start);
  worker.join();
  c->close();
}

TEST(DistributedEngine, WorkerDeathMidPhaseIsATypedError) {
  auto [c, w] = loopback_pair();
  // A fake worker that completes the handshake, accepts the graph and the
  // program, then dies mid-phase.
  std::thread impostor([t = std::shared_ptr<Transport>(std::move(w))] {
    std::vector<std::uint8_t> hello;
    net::put_u32(hello, static_cast<std::uint32_t>(CongestMsg::kHello));
    net::put_u32(hello, kCongestProtoVersion);
    t->send(hello);
    (void)t->recv();  // LoadGraph
    (void)t->recv();  // Start
    t->close();       // die without a RoundDone
  });
  std::vector<Transport*> raw{c.get()};
  auto hub = make_distributed_hub(raw);
  const Graph g = weighted_graph(12, 2, 9008);
  Network net(g, hub);
  EXPECT_THROW((void)distributed_bfs(net, 0), NetError);
  impostor.join();
}

TEST(DistributedEngine, RunsOverRealTcpSockets) {
  const Graph g = weighted_graph(24, 2, 9009);
  Network seq(g);
  const Ecss2Result base = distributed_2ecss(seq, TapOptions{});

  TcpListener listener;
  const int workers = 2;
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([port = listener.port()] {
      const std::unique_ptr<Transport> t = tcp_connect("127.0.0.1", port);
      run_congest_worker(*t);
    });
  }
  std::vector<std::unique_ptr<Transport>> accepted;
  std::vector<Transport*> raw;
  for (int w = 0; w < workers; ++w) {
    accepted.push_back(listener.accept());
    raw.push_back(accepted.back().get());
  }
  {
    auto hub = make_distributed_hub(raw);
    {
      Network net(g, hub);
      const Ecss2Result got = distributed_2ecss(net, TapOptions{});
      EXPECT_EQ(got.edges, base.edges);
      EXPECT_EQ(net.rounds(), seq.rounds());
      EXPECT_EQ(net.messages(), seq.messages());
    }
    hub->shutdown();
  }
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace deck
