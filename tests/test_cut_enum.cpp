#include <gtest/gtest.h>

#include <set>

#include "graph/cut_enum.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/karger.hpp"
#include "support/rng.hpp"

namespace deck {
namespace {

std::vector<char> all_edges(const Graph& g) {
  return std::vector<char>(static_cast<std::size_t>(g.num_edges()), 1);
}

std::set<std::vector<EdgeId>> edge_sets(const std::vector<VertexCut>& cuts) {
  std::set<std::vector<EdgeId>> out;
  for (const auto& c : cuts) {
    auto e = c.edges;
    std::sort(e.begin(), e.end());
    out.insert(e);
  }
  return out;
}

TEST(CutEnum, BridgesOfTwoTriangles) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  const EdgeId bridge = g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  const auto cuts = enumerate_cuts(g, all_edges(g), 1, 1);
  ASSERT_EQ(cuts.cuts.size(), 1u);
  EXPECT_EQ(cuts.cuts[0].edges, std::vector<EdgeId>{bridge});
  // Side separates {0,1,2} from {3,4,5}.
  EXPECT_NE(cuts.cuts[0].side[0], cuts.cuts[0].side[3]);
  EXPECT_EQ(cuts.cuts[0].side[0], cuts.cuts[0].side[1]);
}

TEST(CutEnum, CyclePairsMatchBruteForce) {
  // On a cycle every pair of edges is a cut pair: C(n,2) cuts.
  Graph g = circulant(7, 1);
  const auto cuts = enumerate_cuts(g, all_edges(g), 2, 1);
  const auto brute = enumerate_min_cuts_brute(g, all_edges(g), 2);
  EXPECT_EQ(edge_sets(cuts.cuts), edge_sets(brute));
  EXPECT_EQ(cuts.cuts.size(), 21u);
}

TEST(CutEnum, PairEnumerationMatchesBruteOnRandom2EC) {
  Rng rng(321);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = random_kec(11, 2, 4, rng);
    if (edge_connectivity(g) != 2) continue;  // only minimum cuts of size 2
    const auto cuts = enumerate_cuts(g, all_edges(g), 2, 1);
    const auto brute = enumerate_min_cuts_brute(g, all_edges(g), 2);
    EXPECT_EQ(edge_sets(cuts.cuts), edge_sets(brute)) << "trial " << trial;
  }
}

TEST(CutEnum, KargerFindsAllMinCutsOfSizeThree) {
  Rng rng(55);
  for (int trial = 0; trial < 6; ++trial) {
    Graph g = random_kec(10, 3, 3, rng);
    if (edge_connectivity(g) != 3) continue;
    const auto karger = enumerate_min_cuts_karger(g, all_edges(g), 3, 1000 + trial);
    const auto brute = enumerate_min_cuts_brute(g, all_edges(g), 3);
    // Brute force enumerates bipartitions; only those that are genuine
    // minimum cuts (both shores inducing connected halves) appear in Karger.
    // For minimum cuts both shores are connected, so the sets must agree.
    EXPECT_EQ(edge_sets(karger), edge_sets(brute)) << "trial " << trial;
  }
}

TEST(CutEnum, KargerDeterministicForSeed) {
  Rng rng(9);
  Graph g = random_kec(10, 3, 4, rng);
  const auto a = enumerate_min_cuts_karger(g, all_edges(g), 3, 42);
  const auto b = enumerate_min_cuts_karger(g, all_edges(g), 3, 42);
  EXPECT_EQ(edge_sets(a), edge_sets(b));
}

TEST(CutEnum, CoverageSemantics) {
  Graph g = circulant(6, 1);  // cycle
  const auto cuts = enumerate_cuts(g, all_edges(g), 2, 1);
  // Edge {0,1} covers exactly the pairs containing ... each pair {e,f} is
  // covered by a chord; there are no chords, so augment with one and test.
  Graph h(6);
  for (const Edge& e : g.edges()) h.add_edge(e.u, e.v, e.w);
  const EdgeId chord = h.add_edge(0, 3);
  int covered = 0;
  for (const auto& c : cuts.cuts)
    if (cut_covered_by(c, h, chord)) ++covered;
  // The chord separates the cycle into two arcs of 3 edges each; it covers
  // pairs with one edge in each arc: 3*3 = 9.
  EXPECT_EQ(covered, 9);
}

TEST(CutEnum, CountUncoveredAndFlags) {
  Graph g(4);  // cycle of 4
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  const EdgeId chord = g.add_edge(0, 2);
  std::vector<char> h_mask{1, 1, 1, 1, 0};
  const auto cuts = enumerate_cuts(g, h_mask, 2, 1);
  EXPECT_EQ(cuts.cuts.size(), 6u);
  std::vector<char> a_mask(5, 0);
  EXPECT_EQ(count_uncovered(cuts, g, a_mask), 6);
  a_mask[static_cast<std::size_t>(chord)] = 1;
  // Chord 0-2 covers pairs with exactly one edge in {01,12}: 2*2 = 4.
  EXPECT_EQ(count_uncovered(cuts, g, a_mask), 2);
  const auto flags = covered_flags(cuts, g, a_mask);
  EXPECT_EQ(std::count(flags.begin(), flags.end(), 1), 4);
}

}  // namespace
}  // namespace deck
