#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "congest/checkpoint.hpp"
#include "congest/distributed_engine.hpp"
#include "congest/engine.hpp"
#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "congest/programs.hpp"
#include "ecss/distributed_2ecss.hpp"
#include "ecss/distributed_kecss.hpp"
#include "graph/generators.hpp"
#include "mst/distributed_mst.hpp"
#include "net/fault.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "support/rng.hpp"
#include "tap/distributed_tap.hpp"
#include "tap/tap_instance.hpp"

namespace deck {
namespace {

// Fault-tolerance property of the net engine (protocol v4): killing any
// worker at any protocol moment — mid-phase, at a checkpoint boundary, or
// between quiescence and collect — leaves the algorithm output and the
// solver-visible round/message counters bit-identical to the sequential
// engine. Kill points are named by coordinator-side receive frame indices
// (net/fault.hpp), so every test here is deterministic. The v4 hot path
// (delta round frames + comm-thread pipelining) is the fleet default, so
// every sweep below exercises it; the config-matrix sweeps additionally
// flip delta/pipelining off to prove recovery is config-independent.

struct RunRecord {
  std::vector<EdgeId> edges;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;

  friend bool operator==(const RunRecord&, const RunRecord&) = default;
};

Graph weighted_graph(int n, int k, std::uint64_t seed) {
  Rng rng(seed);
  return with_weights(random_kec(n, k, n, rng), WeightModel::kUniform, rng);
}

template <typename Algo>
RunRecord run_seq(const Graph& g, Algo&& algo) {
  Network net(g);
  RunRecord r;
  r.edges = algo(net);
  r.rounds = net.rounds();
  r.messages = net.messages();
  return r;
}

/// Runs `algo` on a faulted fleet and returns (record, workers still alive).
template <typename Algo>
std::pair<RunRecord, int> run_fleet(const Graph& g, Algo&& algo, int workers,
                                    FleetOptions options) {
  CongestWorkerFleet fleet(workers, std::move(options));
  RunRecord r;
  int alive = 0;
  {
    Network net(g, fleet.hub());
    r.edges = algo(net);
    r.rounds = net.rounds();
    r.messages = net.messages();
    alive = fleet.hub()->num_alive();
  }
  return {r, alive};
}

FleetOptions kill_at(int workers, int victim, std::size_t frame, int checkpoint_interval) {
  FleetOptions o;
  o.hub.checkpoint_interval = checkpoint_interval;
  o.coordinator_faults.resize(static_cast<std::size_t>(workers));
  o.coordinator_faults[static_cast<std::size_t>(victim)] = {
      FaultRule{frame, FaultRule::Kind::kKill, 0}};
  return o;
}

std::vector<EdgeId> bfs_digest(Network& net) {
  const RootedTree t = distributed_bfs(net, 0);
  std::vector<EdgeId> digest;
  for (VertexId v = 0; v < net.n(); ++v) digest.push_back(t.parent_edge(v));
  return digest;
}

TEST(Failover, EveryKillPointOfAPhaseIsBitIdentical) {
  // Exhaustive: kill worker `victim` at EVERY coordinator-side frame index
  // past the Hello, for both victims of a 2-worker fleet, with and without
  // checkpoints. The sweep self-terminates when the kill index runs past
  // the phase (the fleet then finishes with nobody dead).
  const Graph g = weighted_graph(24, 2, 4001);
  const auto algo = [](Network& net) { return bfs_digest(net); };
  const RunRecord base = run_seq(g, algo);
  for (int checkpoint_interval : {0, 1, 2}) {
    for (int victim : {0, 1}) {
      for (std::size_t frame = 1;; ++frame) {
        const auto [got, alive] =
            run_fleet(g, algo, 2, kill_at(2, victim, frame, checkpoint_interval));
        EXPECT_EQ(got, base) << "victim " << victim << " killed at frame " << frame
                             << " with checkpoint interval " << checkpoint_interval;
        if (alive == 2) break;  // the kill never fired: the sweep is done
        EXPECT_EQ(alive, 1);
      }
    }
  }
}

TEST(Failover, KillMidPipelineIsBitIdenticalForEveryAlgorithm) {
  // The acceptance matrix: 2-ECSS / k-ECSS / MST / TAP, workers in {2, 4},
  // checkpoint interval in {1, 8}, early and late kill points.
  struct Case {
    const char* what;
    Graph g;
    std::function<std::vector<EdgeId>(Network&)> algo;
  };
  Rng tap_rng(4004);
  TapInstance inst = random_tap_instance(30, 20, 1, tap_rng);
  const std::vector<Case> cases = {
      {"2-ecss", weighted_graph(24, 2, 4002),
       [](Network& net) { return distributed_2ecss(net, TapOptions{}).edges; }},
      {"k-ecss", weighted_graph(20, 3, 4003),
       [](Network& net) {
         KecssOptions opt;
         opt.seed = 7;
         return distributed_kecss(net, 3, opt).edges;
       }},
      {"mst", weighted_graph(28, 2, 4005),
       [](Network& net) {
         const RootedTree bfs = distributed_bfs(net, 0);
         return distributed_mst(net, bfs).mst_edges;
       }},
      {"tap", inst.g,
       [&inst](Network& net) {
         return distributed_tap_standalone(net, inst, TapOptions{}).augmentation;
       }},
  };
  for (const Case& c : cases) {
    const RunRecord base = run_seq(c.g, c.algo);
    for (int workers : {2, 4}) {
      for (int checkpoint_interval : {1, 8}) {
        for (const auto& [delta, pipeline] :
             {std::pair<bool, bool>{true, true}, {false, false}}) {
          for (const auto& [victim, frame] : {std::pair<int, std::size_t>{0, 7},
                                              {workers - 1, 4}}) {
            FleetOptions o = kill_at(workers, victim, frame, checkpoint_interval);
            o.hub.delta_frames = delta;
            o.worker.pipeline = pipeline;
            const auto [got, alive] = run_fleet(c.g, c.algo, workers, std::move(o));
            EXPECT_EQ(got, base) << c.what << ": " << workers << " workers, interval "
                                 << checkpoint_interval << ", delta " << delta << ", pipeline "
                                 << pipeline << ", victim " << victim << " at frame " << frame;
            EXPECT_EQ(alive, workers - 1) << c.what;
          }
        }
      }
    }
  }
}

TEST(Failover, EveryKillPointSurvivesEveryHotPathConfig) {
  // The v4 acceptance sweep: every coordinator-side kill frame of a phase,
  // for each delta × pipelining combination, with checkpoints on and the
  // workers stepping on two pool threads. Recovery replays coordinator logs
  // as full fixed-format frames regardless of the live wire format, so the
  // outcome must be independent of all of it.
  const Graph g = weighted_graph(24, 2, 4020);
  const auto algo = [](Network& net) { return bfs_digest(net); };
  const RunRecord base = run_seq(g, algo);
  for (bool delta : {false, true}) {
    for (bool pipeline : {false, true}) {
      for (std::size_t frame = 1;; ++frame) {
        FleetOptions o = kill_at(2, 0, frame, /*checkpoint_interval=*/2);
        o.hub.delta_frames = delta;
        o.worker.pipeline = pipeline;
        o.worker.threads = 2;
        const auto [got, alive] = run_fleet(g, algo, 2, std::move(o));
        EXPECT_EQ(got, base) << "delta " << delta << ", pipeline " << pipeline
                             << ", killed at frame " << frame;
        if (alive == 2) break;  // the kill never fired: the sweep is done
        EXPECT_EQ(alive, 1);
      }
    }
  }
}

TEST(Failover, TwoDeathsInOnePhaseCascadeOntoSurvivors) {
  const Graph g = weighted_graph(32, 2, 4006);
  const auto algo = [](Network& net) { return distributed_2ecss(net, TapOptions{}).edges; };
  const RunRecord base = run_seq(g, algo);
  FleetOptions o;
  o.hub.checkpoint_interval = 2;
  o.coordinator_faults.resize(4);
  o.coordinator_faults[1] = {FaultRule{3, FaultRule::Kind::kKill, 0}};
  o.coordinator_faults[3] = {FaultRule{6, FaultRule::Kind::kKill, 0}};
  const auto [got, alive] = run_fleet(g, algo, 4, o);
  EXPECT_EQ(got, base);
  EXPECT_EQ(alive, 2);
}

TEST(Failover, SpareWorkerAdoptsTheOrphanedRange) {
  // With a rangeless spare in the fleet, the spare is the preferred
  // adoption target (least-loaded); output identity is unchanged.
  const Graph g = weighted_graph(26, 2, 4007);
  const auto algo = [](Network& net) { return bfs_digest(net); };
  const RunRecord base = run_seq(g, algo);
  FleetOptions o = kill_at(3, 0, 2, 1);
  o.hub.spares = 1;
  const auto [got, alive] = run_fleet(g, algo, 3, o);
  EXPECT_EQ(got, base);
  EXPECT_EQ(alive, 2);
}

TEST(Failover, DroppedFrameBecomesADeathUnderARecvDeadline) {
  // A dropped RoundDone leaves the worker alive but the coordinator deaf to
  // it; with a recv deadline the silence is declared a death and the phase
  // recovers. (Without a deadline this would stall forever — deadlines are
  // what make drop faults survivable.)
  const Graph g = weighted_graph(24, 2, 4008);
  const auto algo = [](Network& net) { return bfs_digest(net); };
  const RunRecord base = run_seq(g, algo);
  FleetOptions o;
  o.hub.recv.timeout_ms = 200;
  o.hub.checkpoint_interval = 1;
  o.coordinator_faults.resize(2);
  o.coordinator_faults[1] = {FaultRule{2, FaultRule::Kind::kDrop, 0}};
  const auto [got, alive] = run_fleet(g, algo, 2, o);
  EXPECT_EQ(got, base);
  EXPECT_EQ(alive, 1);
}

TEST(Failover, DelaysAndHeartbeatsNeverChangeTheOutcome) {
  // A slow worker under a recv deadline survives: delays stretch the wall
  // clock, heartbeats prove liveness, retries absorb the rest. Nobody dies
  // and the output is identical.
  const Graph g = weighted_graph(24, 2, 4009);
  const auto algo = [](Network& net) { return bfs_digest(net); };
  const RunRecord base = run_seq(g, algo);
  FleetOptions o;
  o.hub.recv.timeout_ms = 150;
  o.hub.recv.retries = 3;
  o.hub.recv.backoff_ms = 10;
  o.worker.heartbeat_ms = 25;
  o.coordinator_faults.resize(2);
  o.coordinator_faults[0] = {FaultRule{2, FaultRule::Kind::kDelay, 120},
                             FaultRule{4, FaultRule::Kind::kDelay, 120}};
  const auto [got, alive] = run_fleet(g, algo, 2, o);
  EXPECT_EQ(got, base);
  EXPECT_EQ(alive, 2);
}

TEST(Failover, ScheduledWorkerSuicideIsRecoveredLikeAnyDeath) {
  // kill_after_rounds makes the *worker* die (transport close from its
  // side), the deployment-shaped twin of the coordinator-side kill rule.
  // Worker options are per-link, so the fleet is hand-built over loopback.
  const Graph g = weighted_graph(24, 2, 4010);
  const auto algo = [](Network& net) { return bfs_digest(net); };
  const RunRecord base = run_seq(g, algo);

  std::vector<std::unique_ptr<Transport>> coordinator_side;
  std::vector<Transport*> raw;
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    auto [coord, work] = loopback_pair();
    coordinator_side.push_back(std::move(coord));
    raw.push_back(coordinator_side.back().get());
    WorkerOptions wo;
    if (w == 0) wo.kill_after_rounds = 2;  // only worker 0 is suicidal
    threads.emplace_back([t = std::shared_ptr<Transport>(std::move(work)), wo] {
      try {
        run_congest_worker(*t, wo);
      } catch (const NetError&) {
      }
    });
  }
  {
    DistributedHubOptions ho;
    ho.checkpoint_interval = 1;
    auto hub = make_distributed_hub(raw, ho);
    {
      Network net(g, hub);
      RunRecord got;
      got.edges = algo(net);
      got.rounds = net.rounds();
      got.messages = net.messages();
      EXPECT_EQ(got, base);
      EXPECT_EQ(hub->num_alive(), 1);
    }
    hub->shutdown();
  }
  for (auto& t : coordinator_side) t->close();
  for (auto& th : threads) th.join();
}

TEST(Failover, PoolWorkersComposeWithFailover) {
  // pool×net: workers stepping on their own ThreadPool, plus a mid-phase
  // kill. Identity is unconditional (BspRunner's contract).
  const Graph g = weighted_graph(28, 2, 4011);
  const auto algo = [](Network& net) { return distributed_2ecss(net, TapOptions{}).edges; };
  const RunRecord base = run_seq(g, algo);
  for (int threads : {1, 3}) {
    FleetOptions o = kill_at(2, 1, 5, 8);
    o.worker.threads = threads;
    const auto [got, alive] = run_fleet(g, algo, 2, o);
    EXPECT_EQ(got, base) << threads << " worker threads";
    EXPECT_EQ(alive, 1);
  }
}

TEST(Failover, CheckpointCadenceAloneNeverPerturbsAnything) {
  // Checkpointing with no faults: pure overhead, zero behavior change.
  const Graph g = weighted_graph(24, 2, 4012);
  const auto algo = [](Network& net) { return distributed_2ecss(net, TapOptions{}).edges; };
  const RunRecord base = run_seq(g, algo);
  for (int checkpoint_interval : {1, 8, 64}) {
    FleetOptions o;
    o.hub.checkpoint_interval = checkpoint_interval;
    const auto [got, alive] = run_fleet(g, algo, 2, o);
    EXPECT_EQ(got, base) << "interval " << checkpoint_interval;
    EXPECT_EQ(alive, 2);
  }
}

TEST(Failover, KillingTheLastWorkerIsATypedError) {
  const Graph g = weighted_graph(16, 2, 4013);
  FleetOptions o = kill_at(1, 0, 2, 1);
  CongestWorkerFleet fleet(1, o);
  Network net(g, fleet.hub());
  EXPECT_THROW((void)distributed_bfs(net, 0), NetError);
}

TEST(Failover, FailoverRunsOverRealTcpSockets) {
  // The same recovery over real sockets: one worker dies by schedule
  // (closing its TCP end), the other absorbs its range.
  const Graph g = weighted_graph(24, 2, 4014);
  Network seq(g);
  const Ecss2Result base = distributed_2ecss(seq, TapOptions{});

  TcpListener listener;
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([w, port = listener.port()] {
      const std::unique_ptr<Transport> t = tcp_connect("127.0.0.1", port);
      WorkerOptions wo;
      if (w == 0) wo.kill_after_rounds = 3;
      try {
        run_congest_worker(*t, wo);
      } catch (const NetError&) {
      }
    });
  }
  std::vector<std::unique_ptr<Transport>> accepted;
  std::vector<Transport*> raw;
  for (int w = 0; w < 2; ++w) {
    accepted.push_back(listener.accept());
    raw.push_back(accepted.back().get());
  }
  // The two TCP connections race to accept(); kill_after_rounds fires on
  // whichever slot the killer landed in, which recovery makes irrelevant.
  {
    DistributedHubOptions ho;
    ho.checkpoint_interval = 4;
    auto hub = make_distributed_hub(raw, ho);
    {
      Network net(g, hub);
      const Ecss2Result got = distributed_2ecss(net, TapOptions{});
      EXPECT_EQ(got.edges, base.edges);
      EXPECT_EQ(net.rounds(), seq.rounds());
      EXPECT_EQ(net.messages(), seq.messages());
      EXPECT_EQ(hub->num_alive(), 1);
    }
    hub->shutdown();
  }
  for (auto& th : threads) th.join();
}

TEST(Failover, FleetRunsOverIpv6WithAMidPhaseDeath) {
  // Same protocol, AF_INET6 sockets ("::1"), one scheduled worker death.
  const Graph g = weighted_graph(20, 2, 4016);
  Network seq(g);
  const Ecss2Result base = distributed_2ecss(seq, TapOptions{});

  TcpListener listener(0, "::1");
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([w, port = listener.port()] {
      const std::unique_ptr<Transport> t = tcp_connect("::1", port);
      WorkerOptions wo;
      if (w == 0) wo.kill_after_rounds = 2;
      try {
        run_congest_worker(*t, wo);
      } catch (const NetError&) {
      }
    });
  }
  std::vector<std::unique_ptr<Transport>> accepted;
  std::vector<Transport*> raw;
  for (int w = 0; w < 2; ++w) {
    accepted.push_back(listener.accept());
    raw.push_back(accepted.back().get());
  }
  {
    DistributedHubOptions ho;
    ho.checkpoint_interval = 1;
    auto hub = make_distributed_hub(raw, ho);
    {
      Network net(g, hub);
      const Ecss2Result got = distributed_2ecss(net, TapOptions{});
      EXPECT_EQ(got.edges, base.edges);
      EXPECT_EQ(net.rounds(), seq.rounds());
      EXPECT_EQ(net.messages(), seq.messages());
      EXPECT_EQ(hub->num_alive(), 1);
    }
    hub->shutdown();
  }
  for (auto& th : threads) th.join();
}

TEST(Failover, CiFaultMatrixLeg) {
  // The CI fault-injection wall drives this test through a matrix of
  // (fault kind, fleet size) via environment variables; each leg sweeps a
  // handful of scripted schedules of that kind. Locally (no env) it runs
  // the kill leg at 2 workers.
  const char* kind_env = std::getenv("DECK_FAULT_KIND");
  const char* workers_env = std::getenv("DECK_FAULT_WORKERS");
  const std::string kind = kind_env != nullptr ? kind_env : "kill";
  const int workers = workers_env != nullptr ? std::atoi(workers_env) : 2;
  ASSERT_GE(workers, 2) << "DECK_FAULT_WORKERS must be >= 2";

  const Graph g = weighted_graph(28, 2, 4017);
  const auto algo = [](Network& net) { return distributed_2ecss(net, TapOptions{}).edges; };
  const RunRecord base = run_seq(g, algo);

  for (int checkpoint_interval : {1, 8}) {
    for (const std::size_t frame : {std::size_t{2}, std::size_t{5}, std::size_t{9}}) {
      FleetOptions o;
      o.hub.checkpoint_interval = checkpoint_interval;
      o.coordinator_faults.resize(static_cast<std::size_t>(workers));
      const int victim = static_cast<int>(frame) % workers;
      int expect_alive = workers;
      if (kind == "kill") {
        o.coordinator_faults[static_cast<std::size_t>(victim)] = {
            FaultRule{frame, FaultRule::Kind::kKill, 0}};
        expect_alive = workers - 1;
      } else if (kind == "drop") {
        o.hub.recv.timeout_ms = 500;
        o.coordinator_faults[static_cast<std::size_t>(victim)] = {
            FaultRule{frame, FaultRule::Kind::kDrop, 0}};
        expect_alive = workers - 1;  // silence past the deadline is death
      } else if (kind == "delay") {
        o.hub.recv.timeout_ms = 200;
        o.hub.recv.retries = 4;
        o.worker.heartbeat_ms = 25;
        o.coordinator_faults[static_cast<std::size_t>(victim)] = {
            FaultRule{frame, FaultRule::Kind::kDelay, 120}};
        expect_alive = workers;  // slow is not dead
      } else {
        FAIL() << "unknown DECK_FAULT_KIND '" << kind << "'";
      }
      const auto [got, alive] = run_fleet(g, algo, workers, std::move(o));
      EXPECT_EQ(got, base) << kind << " at frame " << frame << ", " << workers
                           << " workers, interval " << checkpoint_interval;
      EXPECT_EQ(alive, expect_alive) << kind << " at frame " << frame;
    }
  }
}

// ---------------------------------------------------------------------------
// Program state restore, per primitive family. Each CONGEST primitive runs
// a different VertexProgram with different mutable state (pipeline queues,
// frontiers, received lists); a kill after a checkpoint forces that
// program's decode_state + resume path. Sweep every kill point of every
// primitive's phase with checkpoints on.

TEST(Failover, EveryPrimitiveProgramRestoresItsStateMidPhase) {
  const Graph g = weighted_graph(16, 2, 4040);
  using Digest = std::vector<EdgeId>;
  const auto fold = [](Digest& d, std::uint64_t x) {
    d.push_back(static_cast<EdgeId>(x % 1000003));
  };
  const auto forest_of = [](Network& net) {
    return CommForest::from_tree(distributed_bfs(net, 0));
  };
  const auto fold_items = [&fold](Digest& d, const std::vector<KeyedItem>& items) {
    for (const KeyedItem& it : items) {
      fold(d, it.key);
      fold(d, it.prio);
      fold(d, it.payload);
    }
  };

  std::vector<std::pair<const char*, std::function<Digest(Network&)>>> prims;
  prims.emplace_back("convergecast", [&](Network& net) {
    const CommForest f = forest_of(net);
    std::vector<std::uint64_t> vals(static_cast<std::size_t>(net.n()));
    for (VertexId v = 0; v < net.n(); ++v)
      vals[static_cast<std::size_t>(v)] = static_cast<std::uint64_t>(v) * 3 + 1;
    Digest d;
    for (std::uint64_t x : convergecast(net, f, std::move(vals), CombineOp::kSum)) fold(d, x);
    return d;
  });
  prims.emplace_back("broadcast", [&](Network& net) {
    const CommForest f = forest_of(net);
    std::vector<std::uint64_t> root_value(static_cast<std::size_t>(net.n()));
    for (VertexId v = 0; v < net.n(); ++v)
      root_value[static_cast<std::size_t>(v)] = static_cast<std::uint64_t>(v) * 2 + 5;
    Digest d;
    for (std::uint64_t x : broadcast(net, f, std::move(root_value))) fold(d, x);
    return d;
  });
  prims.emplace_back("keyed-upcast", [&](Network& net) {
    const CommForest f = forest_of(net);
    std::vector<std::vector<KeyedItem>> items(static_cast<std::size_t>(net.n()));
    for (VertexId v = 0; v < net.n(); ++v)
      items[static_cast<std::size_t>(v)].push_back(
          KeyedItem{static_cast<std::uint64_t>(v % 3), static_cast<std::uint64_t>(100 - v),
                    static_cast<std::uint64_t>(v)});
    Digest d;
    for (const auto& fin : keyed_min_upcast(net, f, std::move(items))) fold_items(d, fin);
    return d;
  });
  prims.emplace_back("ancestor-merge", [&](Network& net) {
    const CommForest f = forest_of(net);
    std::vector<std::vector<KeyedItem>> items(static_cast<std::size_t>(net.n()));
    for (VertexId v = 0; v < net.n(); ++v) {
      // Valid ancestor-edge keys for v are forest depths 0 .. depth(v) - 1.
      for (int k = 0; k < std::min(2, f.depth[static_cast<std::size_t>(v)]); ++k)
        items[static_cast<std::size_t>(v)].push_back(
            KeyedItem{static_cast<std::uint64_t>(k), static_cast<std::uint64_t>((v * 5) % 17),
                      static_cast<std::uint64_t>(v)});
    }
    Digest d;
    for (const auto& fin : ancestor_min_merge(net, f, std::move(items))) {
      if (fin.has_value()) {
        fold(d, fin->key);
        fold(d, fin->prio);
        fold(d, fin->payload);
      } else {
        fold(d, 0xDEADu);
      }
    }
    return d;
  });
  prims.emplace_back("pipelined-broadcast", [&](Network& net) {
    const CommForest f = forest_of(net);
    std::vector<std::vector<KeyedItem>> root_items(static_cast<std::size_t>(net.n()));
    for (int i = 0; i < 5; ++i)
      root_items[0].push_back(KeyedItem{static_cast<std::uint64_t>(i),
                                        static_cast<std::uint64_t>(9 - i),
                                        static_cast<std::uint64_t>(i * i)});
    Digest d;
    for (const auto& got : pipelined_broadcast(net, f, std::move(root_items)))
      fold_items(d, got);
    return d;
  });
  prims.emplace_back("path-downcast", [&](Network& net) {
    const CommForest f = forest_of(net);
    std::vector<KeyedItem> own(static_cast<std::size_t>(net.n()));
    for (VertexId v = 0; v < net.n(); ++v)
      own[static_cast<std::size_t>(v)] =
          KeyedItem{static_cast<std::uint64_t>(v) * 10, static_cast<std::uint64_t>(v), 0};
    Digest d;
    for (const auto& got : path_downcast(net, f, std::move(own))) fold_items(d, got);
    return d;
  });
  prims.emplace_back("edge-exchange", [&](Network& net) {
    std::vector<EdgeId> edges;
    std::vector<std::vector<std::uint64_t>> fu, fv;
    for (EdgeId e = 0; e < 6; ++e) {
      edges.push_back(e);
      fu.push_back({static_cast<std::uint64_t>(e) + 1, static_cast<std::uint64_t>(e) * 2});
      fv.push_back({static_cast<std::uint64_t>(e) + 100});
    }
    const ExchangeResult r = edge_exchange(net, edges, fu, fv);
    Digest d;
    for (const auto& xs : r.at_u)
      for (std::uint64_t x : xs) fold(d, x);
    for (const auto& xs : r.at_v)
      for (std::uint64_t x : xs) fold(d, x);
    return d;
  });

  for (const auto& [what, algo] : prims) {
    const RunRecord base = run_seq(g, algo);
    for (std::size_t frame = 1;; ++frame) {
      const auto [got, alive] = run_fleet(g, algo, 2, kill_at(2, 0, frame, /*interval=*/2));
      EXPECT_EQ(got, base) << what << ": kill at frame " << frame;
      if (alive == 2) break;  // the kill never fired: the sweep is done
    }
  }
}

// ---------------------------------------------------------------------------
// Observability across a failover: the merged trace and the metrics
// registry must describe the run that actually happened — survivor lanes
// present, the death and the reassignment counted, checkpoints priced.

TEST(Failover, TracesAndMetricsFollowTheFleetThroughAFailover) {
  obs::set_enabled(true);
  obs::set_tracing(true);
  obs::set_trace_id(0xF00D);
  obs::Registry::global().reset();
  obs::TraceSink::global().clear();

  const Graph g = weighted_graph(24, 2, 4050);
  const auto algo = [](Network& net) { return distributed_2ecss(net, TapOptions{}).edges; };
  const RunRecord base = run_seq(g, algo);  // traced too: covers the seq engine's spans
  obs::TraceSink::global().clear();

  const auto [got, alive] = run_fleet(g, algo, 2, kill_at(2, 0, 5, /*interval=*/1));
  EXPECT_EQ(got, base);
  EXPECT_EQ(alive, 1);

  const obs::Snapshot snap = obs::Registry::global().scrape();
  EXPECT_EQ(snap.counter("congest.net.worker_deaths"), 1u);
  EXPECT_GE(snap.counter("congest.net.reassigns"), 1u);
  const obs::Histogram::Snap* cp = snap.histogram("congest.net.checkpoint_bytes");
  ASSERT_NE(cp, nullptr);
  EXPECT_GE(cp->count, 1u);

  // The survivor (worker 1, trace lane pid 2) shipped its span buffer; the
  // dead worker's lane is simply absent — a death must never corrupt or
  // stall the merged trace.
  bool survivor_lane = false, dead_lane = false;
  for (const obs::TraceEvent& ev : obs::TraceSink::global().drain()) {
    if (ev.name == "worker.execute") {
      survivor_lane = survivor_lane || ev.pid == 2;
      dead_lane = dead_lane || ev.pid == 1;
    }
  }
  EXPECT_TRUE(survivor_lane);
  EXPECT_FALSE(dead_lane);

  obs::set_tracing(false);
  obs::set_enabled(false);
  obs::TraceSink::global().clear();
  obs::Registry::global().reset();
}

// ---------------------------------------------------------------------------
// Worker-side protocol validation: a malformed coordinator frame must kill
// the worker with a typed NetError naming the defect — never undefined
// behavior, never a silently wrong state.

std::vector<std::uint8_t> frame_head(CongestMsg type) {
  std::vector<std::uint8_t> f;
  net::put_u32(f, static_cast<std::uint32_t>(type));
  return f;
}

std::vector<std::uint8_t> load_graph_frame(
    std::uint32_t id, std::uint32_t n,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges, std::uint32_t lo,
    std::uint32_t hi) {
  std::vector<std::uint8_t> f = frame_head(CongestMsg::kLoadGraph);
  net::put_u32(f, id);
  net::put_u32(f, n);
  net::put_u32(f, static_cast<std::uint32_t>(edges.size()));
  for (const auto& [u, v] : edges) {
    net::put_u32(f, u);
    net::put_u32(f, v);
    net::put_u64(f, 1);
  }
  net::put_u32(f, lo);
  net::put_u32(f, hi);
  return f;
}

/// Feeds `frames` to a fresh worker (after consuming its Hello) and returns
/// the typed error message the worker died with.
std::string worker_rejects(const std::vector<std::vector<std::uint8_t>>& frames) {
  auto [coord, work] = loopback_pair();
  std::string what;
  std::thread t([&what, &work] {
    try {
      run_congest_worker(*work);
    } catch (const NetError& e) {
      what = e.what();
    }
  });
  coord->recv();  // Hello
  for (const auto& f : frames) coord->send(f);
  t.join();
  coord->close();
  return what;
}

std::vector<std::uint8_t> square_graph_frame() {
  return load_graph_frame(1, 4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}, 0, 4);
}

TEST(WorkerProtocol, MalformedLoadAndDropFramesAreTypedErrors) {
  EXPECT_NE(worker_rejects({load_graph_frame(1, 4, {{0, 9}}, 0, 4)})
                .find("edge endpoint out of range"),
            std::string::npos);
  EXPECT_NE(worker_rejects({load_graph_frame(1, 4, {{0, 1}}, 3, 2)}).find("range is malformed"),
            std::string::npos);
  EXPECT_NE(worker_rejects({square_graph_frame(), square_graph_frame()})
                .find("reuses live graph id"),
            std::string::npos);
  std::vector<std::uint8_t> drop = frame_head(CongestMsg::kDropGraph);
  net::put_u32(drop, 9);
  EXPECT_NE(worker_rejects({drop}).find("unknown graph id"), std::string::npos);
}

TEST(WorkerProtocol, MalformedRestoreFramesAreTypedErrors) {
  // kRestore body: mode, graph id, program id, lo, hi, cp_present
  // [, len + checkpoint blob], replay entries, spec.
  const auto restore = [](std::uint32_t mode, std::uint32_t gid, std::uint32_t pid,
                          std::uint32_t lo, std::uint32_t hi, const std::vector<std::uint8_t>& cp,
                          const std::vector<std::uint8_t>& tail) {
    std::vector<std::uint8_t> f = frame_head(CongestMsg::kRestore);
    net::put_u32(f, mode);
    net::put_u32(f, gid);
    net::put_u32(f, pid);
    net::put_u32(f, lo);
    net::put_u32(f, hi);
    net::put_u32(f, cp.empty() ? 0 : 1);
    if (!cp.empty()) {
      net::put_u64(f, cp.size());
      net::put_bytes(f, cp);
    }
    f.insert(f.end(), tail.begin(), tail.end());
    return f;
  };
  const std::vector<std::uint8_t> no_replay = {0, 0, 0, 0};  // replay_rounds = 0, no spec

  EXPECT_NE(worker_rejects({square_graph_frame(), restore(0, 1, 1, 0, 4, {}, no_replay)})
                .find("outside a phase"),
            std::string::npos);
  EXPECT_NE(worker_rejects({square_graph_frame(), restore(1, 9, 1, 0, 4, {}, no_replay)})
                .find("unknown graph id"),
            std::string::npos);
  EXPECT_NE(worker_rejects({square_graph_frame(), restore(1, 1, 1, 0, 9, {}, no_replay)})
                .find("Restore range is malformed"),
            std::string::npos);

  CheckpointBlob foreign;  // a valid blob for a different program
  foreign.program_id = 999;
  foreign.lo = 0;
  foreign.hi = 4;
  foreign.round = 1;
  std::vector<std::uint8_t> foreign_bytes;
  encode_checkpoint(foreign, foreign_bytes);
  EXPECT_NE(worker_rejects({square_graph_frame(), restore(1, 1, 1, 0, 4, foreign_bytes, {})})
                .find("checkpoint does not match"),
            std::string::npos);

  std::vector<std::uint8_t> oversized;  // one replay round claiming 2^20 packets
  net::put_u32(oversized, 1);
  net::put_u32(oversized, 1);
  net::put_u32(oversized, 1u << 20);
  EXPECT_NE(worker_rejects({square_graph_frame(), restore(1, 1, 1, 0, 4, {}, oversized)})
                .find("replay longer than frame"),
            std::string::npos);

  BfsProgram bfs(4, 0);
  std::vector<std::uint8_t> spec;
  bfs.encode_spec(spec);
  const std::uint32_t bfs_id = bfs.program_id();

  std::vector<std::uint8_t> bogus_edge;  // round 1 delivers on edge 99 of a 4-edge graph
  net::put_u32(bogus_edge, 1);
  net::put_u32(bogus_edge, 1);
  net::put_u32(bogus_edge, 1);
  net::put_u32(bogus_edge, 99);  // edge
  net::put_u32(bogus_edge, 0);   // dir
  net::put_u32(bogus_edge, 0);   // tag
  net::put_u64(bogus_edge, 0);
  net::put_u64(bogus_edge, 0);
  net::put_u64(bogus_edge, 0);
  net::put_bytes(bogus_edge, spec);
  EXPECT_NE(worker_rejects({square_graph_frame(), restore(1, 1, bfs_id, 0, 4, {}, bogus_edge)})
                .find("bogus edge id"),
            std::string::npos);

  // A structurally valid finish-Restore of a range that still wants to send
  // (a fresh BFS root) contradicts the phase-over contract.
  std::vector<std::uint8_t> fresh;
  net::put_u32(fresh, 0);  // no replay
  net::put_bytes(fresh, spec);
  EXPECT_NE(worker_rejects({square_graph_frame(), restore(1, 1, bfs_id, 0, 4, {}, fresh)})
                .find("was not quiescent"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Checkpoint codec.

CheckpointBlob sample_blob() {
  CheckpointBlob cp;
  cp.program_id = 7;
  cp.lo = 4;
  cp.hi = 12;
  cp.round = 9;
  cp.state = {1, 2, 3, 250, 0, 17};
  cp.awake = {5, 7, 11};
  cp.pending = {
      detail::BspRunner::RemoteSend{3, 0, Packet{10, 20, 30, 2}},
      detail::BspRunner::RemoteSend{8, 1, Packet{0, 0, 0, 0}},
  };
  return cp;
}

TEST(CheckpointCodec, RoundTripIsExact) {
  const CheckpointBlob cp = sample_blob();
  std::vector<std::uint8_t> bytes;
  encode_checkpoint(cp, bytes);
  EXPECT_EQ(decode_checkpoint(bytes), cp);

  // Determinism: equal blobs encode to equal bytes.
  std::vector<std::uint8_t> again;
  encode_checkpoint(cp, again);
  EXPECT_EQ(bytes, again);

  // Empty sections round-trip too.
  CheckpointBlob empty;
  empty.program_id = 1;
  std::vector<std::uint8_t> ebytes;
  encode_checkpoint(empty, ebytes);
  EXPECT_EQ(decode_checkpoint(ebytes), empty);
}

TEST(CheckpointCodec, EveryTruncationIsATypedError) {
  std::vector<std::uint8_t> bytes;
  encode_checkpoint(sample_blob(), bytes);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::span<const std::uint8_t> prefix(bytes.data(), len);
    EXPECT_THROW((void)decode_checkpoint(prefix), NetError) << "prefix length " << len;
  }
}

TEST(CheckpointCodec, BadMagicIsATypedError) {
  std::vector<std::uint8_t> bytes;
  encode_checkpoint(sample_blob(), bytes);
  bytes[0] ^= 0xff;
  EXPECT_THROW((void)decode_checkpoint(bytes), NetError);
}

TEST(CheckpointCodec, FutureVersionIsATypedError) {
  // A blob written by a newer build must be rejected, not misparsed.
  std::vector<std::uint8_t> bytes;
  encode_checkpoint(sample_blob(), bytes);
  bytes[4] = static_cast<std::uint8_t>(kCheckpointVersion + 1);
  EXPECT_THROW((void)decode_checkpoint(bytes), NetError);
}

TEST(CheckpointCodec, CorruptSectionLengthsAreTypedErrors) {
  const CheckpointBlob cp = sample_blob();
  {
    // state length pointing past the end of the blob
    std::vector<std::uint8_t> bytes;
    encode_checkpoint(cp, bytes);
    bytes[24] = 0xff;  // low byte of the u64 state length
    EXPECT_THROW((void)decode_checkpoint(bytes), NetError);
  }
  {
    // awake vertex outside [lo, hi)
    CheckpointBlob bad = cp;
    bad.awake = {1};
    std::vector<std::uint8_t> bytes;
    encode_checkpoint(bad, bytes);
    EXPECT_THROW((void)decode_checkpoint(bytes), NetError);
  }
  {
    // awake list not strictly ascending
    CheckpointBlob bad = cp;
    bad.awake = {7, 7};
    std::vector<std::uint8_t> bytes;
    encode_checkpoint(bad, bytes);
    EXPECT_THROW((void)decode_checkpoint(bytes), NetError);
  }
  {
    // trailing garbage after a well-formed blob
    std::vector<std::uint8_t> bytes;
    encode_checkpoint(cp, bytes);
    bytes.push_back(0);
    EXPECT_THROW((void)decode_checkpoint(bytes), NetError);
  }
}

TEST(CheckpointCodec, ResumeEquivalenceOnAFreshRunner) {
  // The resume contract at the BspRunner level, no transports involved: run
  // BFS for three rounds, capture (encode_state + save_resume), rebuild on
  // a fresh program + runner, and finish both. Outputs must be identical.
  const Graph g = weighted_graph(30, 2, 4015);
  const int n = g.num_vertices();

  BfsProgram original(n, 0);
  detail::BspRunner runner(g, 0, n, nullptr);
  runner.start(original);
  int round = 1;
  for (; round <= 3; ++round)
    if (runner.run_round(round, nullptr) == 0) break;
  const int captured_round = round - 1;

  CheckpointBlob cp;
  cp.program_id = original.program_id();
  cp.lo = 0;
  cp.hi = n;
  cp.round = captured_round;
  original.encode_state(0, n, cp.state);
  runner.save_resume(captured_round, cp.awake, cp.pending);

  std::vector<std::uint8_t> bytes;
  encode_checkpoint(cp, bytes);
  const CheckpointBlob back = decode_checkpoint(bytes);

  BfsProgram restored(n, 0);
  restored.setup(g);
  restored.decode_state(0, n, back.state);
  detail::BspRunner fresh(g, 0, n, nullptr);
  fresh.attach(restored);
  fresh.restore_resume(back.round, back.awake, back.pending);

  for (int r = captured_round + 1;; ++r) {
    const std::uint64_t a = runner.run_round(r, nullptr);
    const std::uint64_t b = fresh.run_round(r, nullptr);
    ASSERT_EQ(a, b) << "round " << r;
    if (a == 0) break;
  }
  runner.finish();
  fresh.finish();
  EXPECT_EQ(restored.parent, original.parent);
  EXPECT_EQ(restored.parent_edge, original.parent_edge);

  std::vector<std::uint8_t> out_a, out_b;
  original.encode_outputs(0, n, out_a);
  restored.encode_outputs(0, n, out_b);
  EXPECT_EQ(out_a, out_b);
}

}  // namespace
}  // namespace deck
