#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "ecss/thurimella.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "graph/union_find.hpp"
#include "sketch/l0_sampler.hpp"
#include "sketch/sketch_connectivity.hpp"
#include "sketch/stream.hpp"
#include "sketch_test_util.hpp"

namespace deck {
namespace {

TEST(L0Sampler, RecoversSingleCoordinate) {
  L0Sampler s(1000, /*seed=*/7);
  s.update(123, 1);
  const L0Sample got = s.sample();
  ASSERT_EQ(got.status, L0Sample::Status::kFound);
  EXPECT_EQ(got.index, 123u);
  EXPECT_EQ(got.sign, 1);
}

TEST(L0Sampler, RecoversNegativeCoefficient) {
  L0Sampler s(1000, /*seed=*/7);
  s.update(55, -1);
  const L0Sample got = s.sample();
  ASSERT_EQ(got.status, L0Sample::Status::kFound);
  EXPECT_EQ(got.index, 55u);
  EXPECT_EQ(got.sign, -1);
}

TEST(L0Sampler, InsertDeleteCancelsToZero) {
  L0Sampler s(1 << 20, /*seed=*/3);
  for (std::uint64_t i = 0; i < 500; ++i) s.update(i * 17 % (1 << 20), 1);
  for (std::uint64_t i = 0; i < 500; ++i) s.update(i * 17 % (1 << 20), -1);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.sample().status, L0Sample::Status::kZero);
}

TEST(L0Sampler, MergeCancelsOppositeSketches) {
  L0Sampler a(4096, /*seed=*/11), b(4096, /*seed=*/11);
  a.update(99, 1);
  b.update(99, -1);
  a.merge(b);
  EXPECT_TRUE(a.empty());
}

TEST(L0Sampler, MergeIsLinear) {
  // sketch(x) + sketch(y) must recover an element of supp(x + y).
  L0Sampler a(4096, /*seed=*/11), b(4096, /*seed=*/11);
  a.update(7, 1);
  a.update(21, 1);
  b.update(7, -1);  // cancels a's 7
  a.merge(b);
  const L0Sample got = a.sample();
  ASSERT_EQ(got.status, L0Sample::Status::kFound);
  EXPECT_EQ(got.index, 21u);
}

TEST(L0Sampler, MergeRejectsIncompatible) {
  L0Sampler a(4096, /*seed=*/1), b(4096, /*seed=*/2);
  EXPECT_THROW(a.merge(b), std::logic_error);
}

TEST(L0Sampler, SampleFromPopulatedSketchIsValid) {
  Rng rng(5);
  L0Sampler s(1 << 16, /*seed=*/99);
  std::vector<char> present(1 << 16, 0);
  for (int i = 0; i < 200; ++i) {
    const auto idx = rng.next_below(1 << 16);
    if (present[idx]) continue;
    present[idx] = 1;
    s.update(idx, 1);
  }
  const L0Sample got = s.sample();
  ASSERT_EQ(got.status, L0Sample::Status::kFound);
  EXPECT_TRUE(present[got.index]);
}

TEST(GraphStream, ValidatesAndMaterializes) {
  GraphStream s(4);
  s.insert(0, 1);
  s.insert(1, 2);
  EXPECT_THROW(s.insert(1, 0), std::logic_error);  // live
  EXPECT_THROW(s.erase(2, 3), std::logic_error);   // absent
  s.erase(0, 1);
  s.insert(0, 1);  // re-insert after delete is fine
  s.insert(2, 3);
  s.erase(1, 2);
  const Graph g = s.materialize();
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(GraphStream, ChurnIsNetNeutral) {
  Rng rng(21);
  Graph g = random_kec(32, 2, 32, rng);
  GraphStream s = GraphStream::from_graph(g);
  const std::size_t live_before = s.live_edges();
  s.churn(100, rng);
  EXPECT_EQ(s.live_edges(), live_before);
  EXPECT_EQ(s.size(), static_cast<std::size_t>(g.num_edges()) + 200);
  const Graph back = s.materialize();
  EXPECT_EQ(back.num_edges(), g.num_edges());
  for (const Edge& e : g.edges()) EXPECT_TRUE(back.has_edge(e.u, e.v));
}

TEST(GraphStream, ChurnRejectsSaturatedGraph) {
  // A complete live graph has no free pairs to churn through — the walk
  // must fail fast instead of rejection-sampling forever.
  GraphStream s(3);
  s.insert(0, 1);
  s.insert(0, 2);
  s.insert(1, 2);
  Rng rng(1);
  EXPECT_THROW(s.churn(1, rng), std::logic_error);
}

TEST(SketchConnectivity, SpanningForestOfConnectedGraph) {
  Rng rng(9);
  Graph g = random_kec(48, 2, 48, rng);
  SketchOptions opt;
  opt.seed = 1234;
  SketchConnectivity sk(g.num_vertices(), opt);
  for (const Edge& e : g.edges()) sk.update(e.u, e.v, 1);
  const std::vector<SketchEdge> forest = sk.spanning_forest();
  ASSERT_EQ(forest.size(), static_cast<std::size_t>(g.num_vertices() - 1));
  UnionFind uf(g.num_vertices());
  for (const SketchEdge& e : forest) {
    EXPECT_TRUE(g.has_edge(e.u, e.v));  // recovered edges are real edges
    EXPECT_TRUE(uf.unite(e.u, e.v));    // and acyclic
  }
  EXPECT_EQ(uf.num_components(), 1);
}

TEST(SketchConnectivity, SpanningForestMatchesComponents) {
  // A disconnected graph: forest size must be n - #components per part.
  Graph g(9);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  // 6,7,8 isolated
  SketchConnectivity sk(g.num_vertices(), {});
  for (const Edge& e : g.edges()) sk.update(e.u, e.v, 1);
  const std::vector<SketchEdge> forest = sk.spanning_forest();
  EXPECT_EQ(forest.size(), static_cast<std::size_t>(g.num_vertices() - num_components(g)));
}

TEST(SketchConnectivity, CertificateIsKEdgeConnected) {
  // The streaming analogue of sparse_certificate: the union of
  // k_spanning_forests(k) on a k-edge-connected input must be
  // k-edge-connected with at most k(n-1) edges.
  for (int k : {2, 3}) {
    for (int n : {24, 48, 96}) {
      Rng rng(500 + n * k);
      Graph g = random_kec(n, k, n, rng);
      ASSERT_TRUE(is_k_edge_connected(g, k));
      GraphStream s = GraphStream::from_graph(g, rng);
      SketchOptions opt;
      opt.seed = 900 + static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(k);
      const SparsifyResult r = sparsify_stream(s, k, opt);
      EXPECT_LE(r.certificate.num_edges(), k * (n - 1)) << "n=" << n << " k=" << k;
      EXPECT_TRUE(is_k_edge_connected(r.certificate, k)) << "n=" << n << " k=" << k;
      // Certificate edges are real edges of the streamed graph.
      for (const Edge& e : r.certificate.edges()) EXPECT_TRUE(g.has_edge(e.u, e.v));
      // Same guarantee the sequential baseline provides.
      const std::vector<EdgeId> seq = sparse_certificate(g, k);
      EXPECT_TRUE(is_k_edge_connected_subset(g, seq, k));
    }
  }
}

TEST(SketchConnectivity, ForestsAreEdgeDisjoint) {
  Rng rng(31);
  Graph g = random_kec(40, 3, 60, rng);
  SketchOptions opt;
  opt.seed = 77;
  const SparsifyResult r = sparsify_stream(GraphStream::from_graph(g), 3, opt);
  ASSERT_EQ(r.forests.size(), 3u);
  auto pairs = sorted_pairs(r.forests);
  EXPECT_EQ(std::adjacent_find(pairs.begin(), pairs.end()), pairs.end());
}

TEST(SketchConnectivity, DeterministicGivenSeed) {
  Rng rng(13);
  Graph g = random_kec(40, 2, 40, rng);
  const GraphStream s = GraphStream::from_graph(g);
  SketchOptions opt;
  opt.seed = 4242;
  const SparsifyResult a = sparsify_stream(s, 2, opt);
  const SparsifyResult b = sparsify_stream(s, 2, opt);
  EXPECT_EQ(sorted_pairs(a.forests), sorted_pairs(b.forests));
  EXPECT_EQ(a.certificate.num_edges(), b.certificate.num_edges());
}

TEST(SketchConnectivity, ChurnCancelsExactly) {
  // Linearity: a stream with transient insert/delete churn leaves sketch
  // state identical to the churn-free stream, so the recovered forests are
  // bit-for-bit the same, not merely equivalent.
  Rng rng(17);
  Graph g = random_kec(36, 2, 36, rng);
  GraphStream plain = GraphStream::from_graph(g);
  GraphStream churned = GraphStream::from_graph(g);
  churned.churn(120, rng);
  SketchOptions opt;
  opt.seed = 1001;
  const SparsifyResult a = sparsify_stream(plain, 2, opt);
  const SparsifyResult b = sparsify_stream(churned, 2, opt);
  EXPECT_EQ(sorted_pairs(a.forests), sorted_pairs(b.forests));
}

TEST(SketchConnectivity, BatchedApplicationMatchesUpdates) {
  Rng rng(23);
  Graph g = random_kec(32, 2, 48, rng);
  GraphStream s = GraphStream::from_graph(g, rng);
  s.churn(40, rng);
  SketchOptions opt;
  opt.seed = 555;
  opt.max_forests = 2;

  SketchConnectivity direct(s.num_vertices(), opt);
  for (const StreamUpdate& u : s.updates()) direct.update(u.u, u.v, u.insert ? 1 : -1);

  SketchConnectivity batched(s.num_vertices(), opt);
  apply_batched(s, /*batch_size=*/7, [&](VertexId src, std::span<const VertexDelta> deltas) {
    batched.apply_batch(src, deltas);
  });

  EXPECT_EQ(sorted_pairs(direct.k_spanning_forests(2)),
            sorted_pairs(batched.k_spanning_forests(2)));
}

TEST(SketchConnectivity, RejectsBadEndpoints) {
  SketchConnectivity sk(4, {});
  EXPECT_THROW(sk.update(0, 4, 1), std::logic_error);
  EXPECT_THROW(sk.update(-1, 2, 1), std::logic_error);
  EXPECT_THROW(sk.update(2, 2, 1), std::logic_error);
  const VertexDelta bad[] = {{4, 1}};
  EXPECT_THROW(sk.apply_batch(0, std::span<const VertexDelta>(bad, 1)), std::logic_error);
}

TEST(SketchConnectivity, RejectsOverBudget) {
  SketchOptions opt;
  opt.max_forests = 1;
  SketchConnectivity sk(8, opt);
  EXPECT_THROW(sk.k_spanning_forests(2), std::logic_error);
}

}  // namespace
}  // namespace deck
