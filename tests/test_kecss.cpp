#include <gtest/gtest.h>

#include <cmath>

#include "congest/network.hpp"
#include "ecss/distributed_kecss.hpp"
#include "ecss/exact.hpp"
#include "ecss/lower_bounds.hpp"
#include "ecss/seq_ecss.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace deck {
namespace {

class KecssSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(KecssSweep, OutputIsKEdgeConnected) {
  const auto [n, k, extra] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * k + extra);
  Graph g = with_weights(random_kec(n, k, extra, rng), WeightModel::kUniform, rng);
  ASSERT_GE(edge_connectivity(g), k);
  Network net(g);
  KecssOptions opt;
  opt.seed = static_cast<std::uint64_t>(k);
  const KecssResult r = distributed_kecss(net, k, opt);
  EXPECT_TRUE(is_k_edge_connected_subset(g, r.edges, k)) << "n=" << n << " k=" << k;
  EXPECT_GE(r.weight, kecss_lower_bound(g, k));
}

INSTANTIATE_TEST_SUITE_P(Sweep, KecssSweep,
                         ::testing::Values(std::make_tuple(12, 2, 10), std::make_tuple(20, 2, 16),
                                           std::make_tuple(16, 3, 12), std::make_tuple(24, 3, 20),
                                           std::make_tuple(14, 4, 14), std::make_tuple(20, 4, 20),
                                           std::make_tuple(12, 5, 16)));

TEST(Kecss, KEqualsOneIsJustTheMst) {
  Rng rng(3);
  Graph g = with_weights(random_kec(20, 2, 15, rng), WeightModel::kUniform, rng);
  Network net(g);
  const KecssResult r = distributed_kecss(net, 1, KecssOptions{});
  EXPECT_EQ(static_cast<int>(r.edges.size()), g.num_vertices() - 1);
  EXPECT_TRUE(is_k_edge_connected_subset(g, r.edges, 1));
}

TEST(Kecss, GreedyBaselineProducesKConnected) {
  Rng rng(5);
  for (int k : {2, 3, 4}) {
    Graph g = with_weights(random_kec(16, k, 12, rng), WeightModel::kUniform, rng);
    const auto h = greedy_kecss(g, k, 7);
    EXPECT_TRUE(is_k_edge_connected_subset(g, h, k)) << "k=" << k;
  }
}

TEST(Kecss, DistributedWithinLogFactorOfExact) {
  Rng rng(9);
  int checked = 0;
  for (int trial = 0; trial < 25 && checked < 4; ++trial) {
    Graph g = with_weights(random_kec(8, 2, 2, rng), WeightModel::kUniform, rng);
    if (g.num_edges() > 16 || edge_connectivity(g) < 2) continue;
    ++checked;
    Network net(g);
    KecssOptions opt;
    opt.seed = trial;
    const KecssResult r = distributed_kecss(net, 2, opt);
    ASSERT_TRUE(is_k_edge_connected_subset(g, r.edges, 2));
    Weight opt_w = 0;
    for (EdgeId e : exact_kecss(g, 2)) opt_w += g.edge(e).w;
    const double bound = 2.0 * 6.0 * (std::log2(8.0) + 2.0);  // O(k log n) envelope
    EXPECT_LE(static_cast<double>(r.weight), bound * static_cast<double>(opt_w));
  }
  EXPECT_GE(checked, 2);
}

TEST(Kecss, ZeroWeightEdgesAreUsedFreely) {
  Rng rng(15);
  Graph g = with_weights(random_kec(14, 3, 12, rng), WeightModel::kZeroHeavy, rng);
  Network net(g);
  const KecssResult r = distributed_kecss(net, 3, KecssOptions{});
  EXPECT_TRUE(is_k_edge_connected_subset(g, r.edges, 3));
}

TEST(Kecss, IterationCountsPolylogPerLevel) {
  Rng rng(21);
  Graph g = with_weights(random_kec(40, 3, 60, rng), WeightModel::kUniform, rng);
  Network net(g);
  const KecssResult r = distributed_kecss(net, 3, KecssOptions{});
  ASSERT_TRUE(is_k_edge_connected_subset(g, r.edges, 3));
  const double logn = std::log2(40.0);
  for (int iters : r.iterations_per_aug)
    EXPECT_LE(iters, static_cast<int>(30.0 * logn * logn * logn));
}

TEST(Kecss, StrictScheduleAlsoTerminates) {
  Rng rng(23);
  Graph g = with_weights(random_kec(12, 2, 8, rng), WeightModel::kUniform, rng);
  Network net(g);
  KecssOptions opt;
  opt.fast_forward = false;  // run the full §4 schedule with the MST filter
  const KecssResult r = distributed_kecss(net, 2, opt);
  EXPECT_TRUE(is_k_edge_connected_subset(g, r.edges, 2));
}

TEST(Kecss, RoundsGrowNearLinearly) {
  // Theorem 1.2: O(k(D log^3 n + n)) — the n term dominates; sanity-check
  // the envelope against n^2.
  Rng rng(27);
  Graph g = with_weights(random_kec(96, 2, 96, rng), WeightModel::kUniform, rng);
  Network net(g);
  const KecssResult r = distributed_kecss(net, 2, KecssOptions{});
  ASSERT_TRUE(is_k_edge_connected_subset(g, r.edges, 2));
  EXPECT_LT(net.rounds(), 96ull * 96ull * 4ull);
}

}  // namespace
}  // namespace deck
