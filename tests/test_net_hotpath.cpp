#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "congest/delta_codec.hpp"
#include "congest/distributed_engine.hpp"
#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "congest/programs.hpp"
#include "graph/generators.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "support/rng.hpp"

namespace deck {
namespace {

// The protocol v4 hot path, piece by piece: the DeltaCodec round-frame
// format (roundtrips, fallback, every malformed-byte rejection), the
// frame-level validation both protocol ends apply to round frames (stale
// round stamps, delta bodies nobody negotiated, version skew), and the
// observability the hot path emits (delta/full frame counters, wire-byte
// and comm-thread wait histograms).

// Control byte layout mirrored from the codec: bits 0-1 kind, bits 2-5
// explicit-field presence, bits 6-7 reserved.
constexpr std::uint8_t kCtrlExplicit = 0;
constexpr std::uint8_t kCtrlRepeatSlot = 1;
constexpr std::uint8_t kCtrlRepeatPrev = 2;
constexpr std::uint8_t kCtrlPresentTag = 1u << 2;

Graph weighted_graph(int n, int k, std::uint64_t seed) {
  Rng rng(seed);
  return with_weights(random_kec(n, k, n, rng), WeightModel::kUniform, rng);
}

std::vector<WirePacket> roundtrip(DeltaCodec& tx, DeltaCodec& rx,
                                  const std::vector<WirePacket>& packets, bool expect_delta) {
  std::vector<std::uint8_t> body;
  const bool delta = tx.encode(body, packets);
  EXPECT_EQ(delta, expect_delta);
  net::WireReader r(body);
  std::vector<WirePacket> back =
      rx.decode(r, static_cast<std::uint32_t>(packets.size()), delta);
  EXPECT_EQ(r.remaining(), 0u);
  return back;
}

std::vector<WirePacket> sorted_by_slot(std::vector<WirePacket> packets) {
  std::sort(packets.begin(), packets.end(), [](const WirePacket& x, const WirePacket& y) {
    return 2 * x.edge + x.dir < 2 * y.edge + y.dir;
  });
  return packets;
}

TEST(DeltaCodec, ExplicitPayloadsRoundTrip) {
  DeltaCodec tx(8), rx(8);
  const std::vector<WirePacket> packets = {
      {3, 1, Packet{7, 100, 0, 5}},
      {0, 0, Packet{1, 2, 3, 0}},
      {5, 0, Packet{0, 0, 0, 0}},
  };
  // Delta bodies are slot-sorted; routing order in, slot order out.
  EXPECT_EQ(roundtrip(tx, rx, packets, /*expect_delta=*/true), sorted_by_slot(packets));
}

TEST(DeltaCodec, FrontierStylePayloadsCompressFarBelowFixed) {
  // The BFS flood shape: every packet is Packet{0,0,0,tag} — one varint
  // slot gap + one control byte each, ~18x under the 36-byte fixed format.
  DeltaCodec tx(64), rx(64);
  std::vector<WirePacket> packets;
  for (EdgeId e = 0; e < 20; ++e) packets.push_back({e, 0, Packet{0, 0, 0, 1}});
  std::vector<std::uint8_t> body;
  ASSERT_TRUE(tx.encode(body, packets));
  EXPECT_LE(body.size(), packets.size() * 4);
  net::WireReader r(body);
  EXPECT_EQ(rx.decode(r, static_cast<std::uint32_t>(packets.size()), true), packets);
}

TEST(DeltaCodec, DenseNovelPayloadsStillUndercutFixed) {
  // The worst explicit packet — three maximal u64s (10 varint bytes each),
  // a tag byte, a control byte, and a slot byte — costs 33 bytes, still
  // under the 36-byte fixed format. The fallback only fires when slot-gap
  // varints outgrow that margin (graphs with >2^27 directed edges) or on
  // empty frames, so small-graph round frames are delta whenever non-empty.
  DeltaCodec tx(4), rx(4);
  const std::uint64_t big = ~std::uint64_t{0};
  const std::vector<WirePacket> packets = {{1, 0, Packet{big, big, big, 200}}};
  std::vector<std::uint8_t> body;
  ASSERT_TRUE(tx.encode(body, packets));
  EXPECT_EQ(body.size(), 33u);
  net::WireReader r(body);
  EXPECT_EQ(rx.decode(r, 1, true), packets);
}

TEST(DeltaCodec, RepeatMarkersCompressRepeatedPayloads) {
  DeltaCodec tx(16), rx(16);
  const Packet payload{40, 50, 60, 3};
  // Frame 1 ships slot 2·4 explicitly.
  EXPECT_EQ(roundtrip(tx, rx, {{4, 0, payload}}, true), (std::vector<WirePacket>{{4, 0, payload}}));

  // Frame 2: slot 2·4 repeats its own history (repeat-slot) and slot 2·9
  // repeats the frame's previous packet (repeat-prev) — two bytes each.
  const std::vector<WirePacket> frame2 = {{4, 0, payload}, {9, 0, payload}};
  std::vector<std::uint8_t> body;
  ASSERT_TRUE(tx.encode(body, frame2));
  EXPECT_LE(body.size(), 4u);
  net::WireReader r(body);
  EXPECT_EQ(rx.decode(r, 2, true), frame2);
}

TEST(DeltaCodec, CacheAdvancesIdenticallyAcrossFormats) {
  // A fixed-format frame must advance the per-slot cache exactly like a
  // delta frame, so a later delta frame may reference it with a
  // repeat-slot marker (the formats interleave freely on one link).
  DeltaCodec rx(4);
  const std::vector<WirePacket> novel = {{1, 1, Packet{77, 88, 99, 9}}};
  std::vector<std::uint8_t> fixed;
  encode_packet_fixed(fixed, novel[0].edge, novel[0].dir, novel[0].msg);
  {
    net::WireReader r(fixed);
    ASSERT_EQ(rx.decode(r, 1, /*delta=*/false), novel);
  }
  std::vector<std::uint8_t> repeat;  // slot 3 again, payload by reference
  net::put_varint(repeat, 3);
  repeat.push_back(kCtrlRepeatSlot);
  net::WireReader r(repeat);
  EXPECT_EQ(rx.decode(r, 1, /*delta=*/true), novel);
}

TEST(DeltaCodec, EmptyFramesAreFixed) {
  DeltaCodec tx(4);
  std::vector<std::uint8_t> body;
  EXPECT_FALSE(tx.encode(body, {}));
  EXPECT_TRUE(body.empty());
}

TEST(DeltaCodec, ResetForgetsTheCache) {
  // Executions are independent: after reset(), a repeat-slot reference to
  // the previous execution's traffic must be rejected as stale.
  DeltaCodec rx(4);
  std::vector<std::uint8_t> body;
  net::put_varint(body, 2);
  body.push_back(kCtrlExplicit | kCtrlPresentTag);
  body.push_back(5);
  {
    net::WireReader r(body);
    ASSERT_EQ(rx.decode(r, 1, true).size(), 1u);
  }
  rx.reset(4);
  std::vector<std::uint8_t> stale;
  net::put_varint(stale, 2);
  stale.push_back(kCtrlRepeatSlot);
  net::WireReader r(stale);
  EXPECT_THROW((void)rx.decode(r, 1, true), NetError);
}

std::string decode_error(DeltaCodec& rx, const std::vector<std::uint8_t>& body,
                         std::uint32_t count, bool delta = true) {
  net::WireReader r(body);
  try {
    (void)rx.decode(r, count, delta);
  } catch (const NetError& e) {
    return e.what();
  }
  return {};
}

TEST(DeltaCodecErrors, EveryMalformedDeltaByteIsATypedError) {
  DeltaCodec rx(4);  // slots 0..7

  {
    // Zero slot gap after the first packet: two payloads for one mailbox.
    std::vector<std::uint8_t> b;
    net::put_varint(b, 0);
    b.push_back(kCtrlExplicit);
    net::put_varint(b, 0);
    b.push_back(kCtrlExplicit);
    EXPECT_NE(decode_error(rx, b, 2).find("overlapping delta payload"), std::string::npos);
  }
  {
    // Slot id past the last directed edge.
    std::vector<std::uint8_t> b;
    net::put_varint(b, 8);
    b.push_back(kCtrlExplicit);
    EXPECT_NE(decode_error(rx, b, 1).find("outside the graph"), std::string::npos);
  }
  {
    // Reserved control bits set.
    std::vector<std::uint8_t> b;
    net::put_varint(b, 0);
    b.push_back(0xc0);
    EXPECT_NE(decode_error(rx, b, 1).find("reserved control bits"), std::string::npos);
  }
  {
    // Repeat-slot marker for a mailbox this link never shipped.
    std::vector<std::uint8_t> b;
    net::put_varint(b, 1);
    b.push_back(kCtrlRepeatSlot);
    EXPECT_NE(decode_error(rx, b, 1).find("never shipped"), std::string::npos);
  }
  {
    // Repeat-prev as the first packet of a frame.
    std::vector<std::uint8_t> b;
    net::put_varint(b, 0);
    b.push_back(kCtrlRepeatPrev);
    EXPECT_NE(decode_error(rx, b, 1).find("no previous message"), std::string::npos);
  }
  {
    // Kind 3 does not exist.
    std::vector<std::uint8_t> b;
    net::put_varint(b, 0);
    b.push_back(3);
    EXPECT_NE(decode_error(rx, b, 1).find("unknown packet encoding"), std::string::npos);
  }
  {
    // More packets than directed-edge mailboxes.
    EXPECT_NE(decode_error(rx, {}, 9).find("more packets than directed edges"),
              std::string::npos);
  }
}

TEST(DeltaCodecErrors, EveryTruncationIsATypedError) {
  DeltaCodec tx(8);
  std::vector<std::uint8_t> body;
  const std::vector<WirePacket> packets = {{0, 0, Packet{1, 2, 3, 4}}, {3, 1, Packet{9, 0, 0, 1}}};
  ASSERT_TRUE(tx.encode(body, packets));
  for (std::size_t len = 0; len < body.size(); ++len) {
    DeltaCodec rx(8);
    const std::vector<std::uint8_t> prefix(body.begin(),
                                           body.begin() + static_cast<std::ptrdiff_t>(len));
    net::WireReader r(prefix);
    EXPECT_THROW((void)rx.decode(r, 2, true), NetError) << "prefix length " << len;
  }
}

TEST(DeltaCodecErrors, MalformedFixedPacketsAreTypedErrors) {
  DeltaCodec rx(4);
  {
    std::vector<std::uint8_t> b;  // direction 2 does not exist
    net::put_u32(b, 0);
    net::put_u32(b, 2);
    net::put_u32(b, 0);
    net::put_u64(b, 0);
    net::put_u64(b, 0);
    net::put_u64(b, 0);
    EXPECT_NE(decode_error(rx, b, 1, /*delta=*/false).find("direction must be 0 or 1"),
              std::string::npos);
  }
  {
    std::vector<std::uint8_t> b;  // edge 99 of a 4-edge graph
    net::put_u32(b, 99);
    net::put_u32(b, 0);
    net::put_u32(b, 0);
    net::put_u64(b, 0);
    net::put_u64(b, 0);
    net::put_u64(b, 0);
    EXPECT_NE(decode_error(rx, b, 1, /*delta=*/false).find("outside the graph"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Coordinator-side round-frame validation, driven by a scripted impostor
// worker: a malformed RoundDone must kill that worker with the named typed
// error, which (with nobody left to adopt the range) surfaces to the
// caller.

std::uint32_t round_done_head(std::uint32_t flags, std::uint32_t round) {
  return static_cast<std::uint32_t>(CongestMsg::kRoundDone) | (flags << 8) | (round << 16);
}

std::uint32_t round_head(std::uint32_t flags, std::uint32_t round) {
  return static_cast<std::uint32_t>(CongestMsg::kRound) | (flags << 8) | (round << 16);
}

/// Runs a 1-worker BFS phase against an impostor worker that answers the
/// first barrier with `round_done`, and returns the coordinator's typed
/// error message.
std::string coordinator_rejects(bool delta_enabled, const std::vector<std::uint8_t>& round_done) {
  auto [coord, work] = loopback_pair();
  std::thread t([w = std::shared_ptr<Transport>(std::move(work)), &round_done] {
    std::vector<std::uint8_t> hello;
    net::put_u32(hello, static_cast<std::uint32_t>(CongestMsg::kHello));
    net::put_u32(hello, kCongestProtoVersion);
    w->send(hello);
    (void)w->recv();  // LoadGraph
    (void)w->recv();  // Start
    w->send(round_done);
    while (w->recv().has_value()) {  // drain until the coordinator closes us
    }
    w->close();
  });
  std::string what;
  {
    DistributedHubOptions ho;
    ho.delta_frames = delta_enabled;
    const std::shared_ptr<DistributedEngineHub> hub =
        make_distributed_hub({coord.get()}, ho);
    try {
      const Graph g = weighted_graph(8, 2, 5001);
      Network net(g, hub);
      (void)distributed_bfs(net, 0);
    } catch (const NetError& e) {
      what = e.what();
    }
    hub->shutdown();
  }
  coord->close();
  t.join();
  return what;
}

TEST(CoordinatorProtocol, StaleRoundDoneIsATypedError) {
  std::vector<std::uint8_t> f;
  net::put_u32(f, round_done_head(0, 7));  // barrier is at round 1
  net::put_u64(f, 1);
  net::put_u32(f, 0);
  EXPECT_NE(coordinator_rejects(true, f).find("stale RoundDone"), std::string::npos);
}

TEST(CoordinatorProtocol, DeltaRoundDoneWhileDisabledIsATypedError) {
  std::vector<std::uint8_t> f;
  net::put_u32(f, round_done_head(1, 1));
  net::put_u64(f, 1);
  net::put_u32(f, 0);
  EXPECT_NE(coordinator_rejects(false, f).find("delta frames are disabled"), std::string::npos);
}

TEST(CoordinatorProtocol, OverlappingDeltaRoundDoneIsATypedError) {
  std::vector<std::uint8_t> f;
  net::put_u32(f, round_done_head(1, 1));
  net::put_u64(f, 1);
  net::put_u32(f, 2);       // two packets...
  net::put_varint(f, 0);    // ...first at slot 0
  f.push_back(kCtrlExplicit);
  net::put_varint(f, 0);    // ...second at a zero gap: same mailbox twice
  f.push_back(kCtrlExplicit);
  EXPECT_NE(coordinator_rejects(true, f).find("overlapping delta payload"), std::string::npos);
}

TEST(CoordinatorProtocol, TruncatedDeltaRoundDoneIsATypedError) {
  std::vector<std::uint8_t> f;
  net::put_u32(f, round_done_head(1, 1));
  net::put_u64(f, 1);
  net::put_u32(f, 2);     // claims two packets, carries half of one
  net::put_varint(f, 0);
  EXPECT_NE(coordinator_rejects(true, f).find("malformed protocol message"), std::string::npos);
}

TEST(CoordinatorProtocol, OversizedRoundDoneIsATypedError) {
  std::vector<std::uint8_t> f;
  net::put_u32(f, round_done_head(1, 1));
  net::put_u64(f, 1);
  net::put_u32(f, 1u << 20);  // more packets than directed edges
  EXPECT_NE(coordinator_rejects(true, f).find("more packets than directed edges"),
            std::string::npos);
}

TEST(CoordinatorProtocol, V3WorkerIsRejectedWithAVersionSkewError) {
  // Cross-version: a worker speaking the previous protocol must be turned
  // away at the handshake with an error naming both versions.
  auto [coord, work] = loopback_pair();
  std::thread t([w = std::shared_ptr<Transport>(std::move(work))] {
    std::vector<std::uint8_t> hello;
    net::put_u32(hello, static_cast<std::uint32_t>(CongestMsg::kHello));
    net::put_u32(hello, 3);
    w->send(hello);
    while (w->recv().has_value()) {
    }
    w->close();
  });
  std::string what;
  try {
    (void)make_distributed_hub({coord.get()}, DistributedHubOptions{});
  } catch (const NetError& e) {
    what = e.what();
  }
  EXPECT_NE(what.find("speaks protocol version 3, coordinator speaks 4"), std::string::npos);
  coord->close();
  t.join();
}

// ---------------------------------------------------------------------------
// Worker-side round-frame validation: the mirror checks, driven by a
// scripted impostor coordinator.

std::vector<std::uint8_t> square_graph_frame() {
  std::vector<std::uint8_t> f;
  net::put_u32(f, static_cast<std::uint32_t>(CongestMsg::kLoadGraph));
  net::put_u32(f, 1);  // graph id
  net::put_u32(f, 4);  // n
  net::put_u32(f, 4);  // m
  for (const auto& [u, v] : std::initializer_list<std::pair<std::uint32_t, std::uint32_t>>{
           {0, 1}, {1, 2}, {2, 3}, {3, 0}}) {
    net::put_u32(f, u);
    net::put_u32(f, v);
    net::put_u64(f, 1);
  }
  net::put_u32(f, 0);  // lo
  net::put_u32(f, 4);  // hi
  return f;
}

std::vector<std::uint8_t> start_bfs_frame(std::uint32_t exec_flags) {
  BfsProgram bfs(4, 0);
  std::vector<std::uint8_t> f;
  net::put_u32(f, static_cast<std::uint32_t>(CongestMsg::kStart));
  net::put_u32(f, 1);  // graph id
  net::put_u32(f, bfs.program_id());
  net::put_u32(f, 1);  // trace node id
  net::put_u32(f, 0);  // tracing off
  net::put_u64(f, 0);  // trace id
  net::put_u64(f, 0);  // parent span
  net::put_u32(f, exec_flags);
  net::put_u32(f, 0);  // checkpoint interval
  bfs.encode_spec(f);
  return f;
}

/// Feeds `frames` to a fresh worker (after its Hello) and returns the typed
/// error the worker died with. The worker answers the Start by running
/// round 1 and posting its RoundDone, then reads the next queued frame.
std::string worker_rejects(const std::vector<std::vector<std::uint8_t>>& frames) {
  auto [coord, work] = loopback_pair();
  std::string what;
  std::thread t([&what, &work] {
    try {
      run_congest_worker(*work);
    } catch (const NetError& e) {
      what = e.what();
    }
  });
  (void)coord->recv();  // Hello
  for (const auto& f : frames) coord->send(f);
  t.join();
  coord->close();
  return what;
}

TEST(WorkerProtocol, StaleRoundFrameIsATypedError) {
  std::vector<std::uint8_t> round;
  net::put_u32(round, round_head(0, 5));  // worker is at round 1
  net::put_u32(round, 0);
  EXPECT_NE(worker_rejects({square_graph_frame(), start_bfs_frame(1), round})
                .find("stale Round frame"),
            std::string::npos);
}

TEST(WorkerProtocol, DeltaRoundFrameWhileDisabledIsATypedError) {
  std::vector<std::uint8_t> round;  // delta body, but Start negotiated none
  net::put_u32(round, round_head(1, 1));
  net::put_u32(round, 0);
  EXPECT_NE(worker_rejects({square_graph_frame(), start_bfs_frame(0), round})
                .find("delta Round frame but delta frames are disabled"),
            std::string::npos);
}

TEST(WorkerProtocol, MalformedDeltaRoundBodiesAreTypedErrors) {
  {
    std::vector<std::uint8_t> round;  // overlapping: zero gap between packets
    net::put_u32(round, round_head(1, 1));
    net::put_u32(round, 2);
    net::put_varint(round, 0);
    round.push_back(kCtrlExplicit);
    net::put_varint(round, 0);
    round.push_back(kCtrlExplicit);
    EXPECT_NE(worker_rejects({square_graph_frame(), start_bfs_frame(1), round})
                  .find("overlapping delta payload"),
              std::string::npos);
  }
  {
    std::vector<std::uint8_t> round;  // truncated: claims a packet, body empty
    net::put_u32(round, round_head(1, 1));
    net::put_u32(round, 1);
    EXPECT_NE(worker_rejects({square_graph_frame(), start_bfs_frame(1), round})
                  .find("malformed protocol message"),
              std::string::npos);
  }
  {
    std::vector<std::uint8_t> round;  // stale repeat-slot reference
    net::put_u32(round, round_head(1, 1));
    net::put_u32(round, 1);
    net::put_varint(round, 0);
    round.push_back(kCtrlRepeatSlot);
    EXPECT_NE(worker_rejects({square_graph_frame(), start_bfs_frame(1), round})
                  .find("never shipped"),
              std::string::npos);
  }
}

TEST(WorkerProtocol, CheckpointInsideAPipelinedRoundIsATypedError) {
  // Start negotiated no checkpoint cadence, so the worker eagerly stepped
  // round 2's interior; a Round frame that then demands a checkpoint is a
  // contract violation the worker must refuse, not silently mis-snapshot.
  std::vector<std::uint8_t> round;
  net::put_u32(round, round_head(2, 1));  // flags bit 1: checkpoint
  net::put_u32(round, 0);
  EXPECT_NE(worker_rejects({square_graph_frame(), start_bfs_frame(1), round})
                .find("checkpoint requested inside a pipelined round"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Hot-path observability: the counters and histograms bench_a2_breakdown
// uses to attribute delta/pipelining wins.

TEST(NetHotPathObs, DeltaFramesAndCommWaitsAreCounted) {
  obs::set_enabled(true);
  obs::Registry::global().reset();
  const Graph g = weighted_graph(24, 2, 5002);
  {
    CongestWorkerFleet fleet(2, FleetOptions{});  // v4 defaults: delta + pipeline
    Network net(g, fleet.hub());
    (void)distributed_bfs(net, 0);
  }
  const obs::Snapshot snap = obs::Registry::global().scrape();
  EXPECT_GE(snap.counter("congest.net.delta_frames"), 1u);
  const obs::Histogram::Snap* wire = snap.histogram("congest.net.round_wire_bytes");
  ASSERT_NE(wire, nullptr);
  EXPECT_GE(wire->count, 1u);
  const obs::Histogram::Snap* send_wait = snap.histogram("congest.net.send_thread_wait_ns");
  ASSERT_NE(send_wait, nullptr);
  EXPECT_GE(send_wait->count, 1u);
  const obs::Histogram::Snap* recv_wait = snap.histogram("congest.net.recv_thread_wait_ns");
  ASSERT_NE(recv_wait, nullptr);
  EXPECT_GE(recv_wait->count, 1u);
  obs::set_enabled(false);
  obs::Registry::global().reset();
}

TEST(NetHotPathObs, DisablingDeltaCountsOnlyFullFrames) {
  obs::set_enabled(true);
  obs::Registry::global().reset();
  const Graph g = weighted_graph(24, 2, 5003);
  {
    FleetOptions o;
    o.hub.delta_frames = false;
    CongestWorkerFleet fleet(2, o);
    Network net(g, fleet.hub());
    (void)distributed_bfs(net, 0);
  }
  const obs::Snapshot snap = obs::Registry::global().scrape();
  EXPECT_EQ(snap.counter("congest.net.delta_frames"), 0u);
  EXPECT_GE(snap.counter("congest.net.full_frames"), 1u);
  obs::set_enabled(false);
  obs::Registry::global().reset();
}

}  // namespace
}  // namespace deck
