#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "congest/primitives.hpp"
#include "graph/generators.hpp"
#include "graph/mst_seq.hpp"
#include "graph/traversal.hpp"
#include "mst/distributed_mst.hpp"
#include "support/rng.hpp"

namespace deck {
namespace {

MstResult run_mst(Network& net) {
  RootedTree bfs = distributed_bfs(net, 0);
  return distributed_mst(net, bfs);
}

TEST(DistributedMst, MatchesKruskalOnRandomWeightedGraphs) {
  Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    Graph topo = random_kec(40, 2, 40, rng);
    Graph g = with_weights(topo, WeightModel::kUniform, rng);
    Network net(g);
    const MstResult r = run_mst(net);
    auto expect = kruskal_mst(g);
    auto got = r.mst_edges;
    std::sort(expect.begin(), expect.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expect) << "trial " << trial;
  }
}

TEST(DistributedMst, TreeOrientationIsConsistent) {
  Rng rng(7);
  Graph g = with_weights(torus(5, 6), WeightModel::kUniform, rng);
  Network net(g);
  const MstResult r = run_mst(net);
  const std::set<EdgeId> mst(r.mst_edges.begin(), r.mst_edges.end());
  int non_roots = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const EdgeId pe = r.tree.parent_edge(v);
    if (pe == kNoEdge) continue;
    ++non_roots;
    EXPECT_TRUE(mst.count(pe));
    // Parent edge joins v and parent(v).
    const Edge& e = g.edge(pe);
    EXPECT_TRUE((e.u == v && e.v == r.tree.parent(v)) || (e.v == v && e.u == r.tree.parent(v)));
  }
  EXPECT_EQ(non_roots, g.num_vertices() - 1);
  EXPECT_EQ(r.tree.roots().size(), 1u);
  EXPECT_EQ(r.tree.roots()[0], 0);
}

TEST(DistributedMst, FragmentInvariants) {
  Rng rng(31);
  for (int n : {64, 144, 256}) {
    Graph g = with_weights(random_kec(n, 2, n, rng), WeightModel::kUniform, rng);
    Network net(g);
    const MstResult r = run_mst(net);
    const double sq = std::sqrt(static_cast<double>(n));
    EXPECT_LE(r.num_fragments, static_cast<int>(6 * sq) + 2) << "n=" << n;
    EXPECT_LE(r.max_fragment_height, static_cast<int>(8 * sq) + 2) << "n=" << n;
    // Fragment labels are dense 0..F-1 and every fragment non-empty.
    std::vector<int> counts(static_cast<std::size_t>(r.num_fragments), 0);
    for (int f : r.fragment) {
      ASSERT_GE(f, 0);
      ASSERT_LT(f, r.num_fragments);
      ++counts[static_cast<std::size_t>(f)];
    }
    for (int c : counts) EXPECT_GT(c, 0);
    // Global edges connect different fragments; other MST edges do not.
    const std::set<EdgeId> globals(r.global_edges.begin(), r.global_edges.end());
    for (EdgeId e : r.mst_edges) {
      const Edge& ed = g.edge(e);
      const bool crosses = r.fragment[static_cast<std::size_t>(ed.u)] !=
                           r.fragment[static_cast<std::size_t>(ed.v)];
      EXPECT_EQ(crosses, globals.count(e) > 0);
    }
  }
}

TEST(DistributedMst, FragmentsAreConnectedSubtrees) {
  Rng rng(12);
  Graph g = with_weights(random_kec(60, 2, 60, rng), WeightModel::kUniform, rng);
  Network net(g);
  const MstResult r = run_mst(net);
  // Within a fragment, walking to the parent stays in the fragment until
  // the fragment root (whose parent is outside or absent).
  std::vector<int> root_count(static_cast<std::size_t>(r.num_fragments), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const VertexId p = r.tree.parent(v);
    const int fv = r.fragment[static_cast<std::size_t>(v)];
    if (p == kNoVertex || r.fragment[static_cast<std::size_t>(p)] != fv)
      ++root_count[static_cast<std::size_t>(fv)];
  }
  for (int c : root_count) EXPECT_EQ(c, 1);  // exactly one root per fragment
}

TEST(DistributedMst, RoundsSublinearOnLowDiameterFamily) {
  Rng rng(5);
  // Hypercube: D = log n. Rounds should be well below n for larger n.
  Graph g = with_weights(hypercube(8), WeightModel::kUniform, rng);  // n=256
  Network net(g);
  run_mst(net);
  EXPECT_LT(net.rounds(), 8 * 256u);  // far below n * D; sanity envelope
  EXPECT_GT(net.rounds(), 0u);
}

TEST(DistributedMst, WorksOnUnitWeights) {
  Rng rng(3);
  Graph g = with_weights(torus(4, 4), WeightModel::kUnit, rng);
  Network net(g);
  const MstResult r = run_mst(net);
  EXPECT_EQ(static_cast<int>(r.mst_edges.size()), g.num_vertices() - 1);
  // Unit weights: Kruskal picks lowest edge ids.
  auto expect = kruskal_mst(g);
  auto got = r.mst_edges;
  std::sort(got.begin(), got.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(got, expect);
}

}  // namespace
}  // namespace deck
