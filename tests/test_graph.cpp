#include <gtest/gtest.h>

#include "graph/graph.hpp"
#include "graph/traversal.hpp"
#include "graph/tree.hpp"
#include "graph/union_find.hpp"

namespace deck {
namespace {

Graph triangle() {
  Graph g(3);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 7);
  g.add_edge(2, 0, 9);
  return g;
}

TEST(Graph, BasicAccessors) {
  Graph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.total_weight(), 21);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_EQ(g.find_edge(1, 2), 1);
  EXPECT_EQ(g.find_edge(2, 1), 1);
  EXPECT_EQ(g.edge(0).other(0), 1);
  EXPECT_EQ(g.edge(0).other(1), 0);
  EXPECT_EQ(g.degree(1), 2);
}

TEST(Graph, RejectsSelfLoopAndBadEndpoints) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 0, 1), std::logic_error);
  EXPECT_THROW(g.add_edge(0, 5, 1), std::logic_error);
  EXPECT_THROW(g.add_edge(0, 1, -2), std::logic_error);
}

TEST(Graph, EdgeSubgraphRenumbers) {
  Graph g = triangle();
  std::vector<EdgeId> keep{2, 0};
  Graph s = g.edge_subgraph(keep);
  EXPECT_EQ(s.num_edges(), 2);
  EXPECT_EQ(s.edge(0).w, 9);
  EXPECT_EQ(s.edge(1).w, 5);
}

TEST(Traversal, ComponentsAndConnectivity) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  EXPECT_EQ(num_components(g), 2);
  EXPECT_FALSE(is_connected(g));
  g.add_edge(2, 3);
  EXPECT_TRUE(is_connected(g));
}

TEST(Traversal, SpanningConnectedRespectsMask) {
  Graph g = triangle();
  EXPECT_TRUE(is_spanning_connected(g, {1, 1, 0}));
  EXPECT_FALSE(is_spanning_connected(g, {1, 0, 0}));
}

TEST(Traversal, BfsDistancesAndDiameter) {
  Graph g(4);  // path 0-1-2-3
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[3], 3);
  EXPECT_EQ(diameter(g), 3);
}

TEST(RootedTree, DepthParentLcaAncestor) {
  // 0 - 1 - 2, 1 - 3 (star-ish)
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  RootedTree t = bfs_tree(g, 0);
  EXPECT_EQ(t.depth(0), 0);
  EXPECT_EQ(t.depth(2), 2);
  EXPECT_EQ(t.parent(3), 1);
  EXPECT_TRUE(t.is_ancestor(0, 2));
  EXPECT_TRUE(t.is_ancestor(1, 3));
  EXPECT_FALSE(t.is_ancestor(2, 3));
  EXPECT_EQ(t.lca(2, 3), 1);
  EXPECT_EQ(t.path_length(2, 3), 2);
  EXPECT_EQ(t.height(), 2);
}

TEST(RootedTree, PathEdgesMatchesManualWalk) {
  Graph g(6);  // path graph
  for (int i = 0; i + 1 < 6; ++i) g.add_edge(i, i + 1);
  RootedTree t = bfs_tree(g, 0);
  const auto p = t.path_edges(1, 4);
  EXPECT_EQ(p.size(), 3u);  // edges 1-2, 2-3, 3-4
}

TEST(RootedTree, DetectsForestRoots) {
  Graph g(4);
  g.add_edge(0, 1);
  // 2, 3 isolated
  RootedTree t = bfs_tree(g, 0);
  EXPECT_EQ(t.roots().size(), 3u);
}

TEST(UnionFind, MergesAndCounts) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_components(), 5);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_EQ(uf.component_size(1), 2);
  uf.unite(2, 3);
  uf.unite(0, 3);
  EXPECT_EQ(uf.num_components(), 2);
}

}  // namespace
}  // namespace deck
