#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "congest/primitives.hpp"
#include "decomp/segments.hpp"
#include "graph/generators.hpp"
#include "mst/distributed_mst.hpp"
#include "support/rng.hpp"

namespace deck {
namespace {

struct DecompSetup {
  Graph g;
  Network net;
  RootedTree bfs;
  MstResult mst;
  CommForest bfs_forest;

  explicit DecompSetup(Graph graph) : g(std::move(graph)), net(g), bfs(), mst() {
    bfs = distributed_bfs(net, 0);
    mst = distributed_mst(net, bfs);
    bfs_forest = CommForest::from_tree(bfs);
  }

  SegmentDecomposition decompose() {
    return SegmentDecomposition(net, mst.tree, mst.fragment, mst.global_edges, bfs_forest, 0);
  }
};

Graph random_weighted(int n, Rng& rng) {
  return with_weights(random_kec(n, 2, n, rng), WeightModel::kUniform, rng);
}

TEST(Decomposition, MarkedSetIsLcaClosedAndSmall) {
  Rng rng(101);
  for (int n : {40, 90, 160}) {
    DecompSetup s(random_weighted(n, rng));
    auto dec = s.decompose();
    const double sq = std::sqrt(static_cast<double>(n));
    EXPECT_LE(dec.num_marked(), static_cast<int>(10 * sq) + 4) << "n=" << n;
    // LCA closure (Lemma 3.4 property 2).
    const auto& marked = dec.marked_vertices();
    for (std::size_t i = 0; i < marked.size(); ++i)
      for (std::size_t j = i + 1; j < marked.size(); ++j) {
        const VertexId l = s.mst.tree.lca(marked[i], marked[j]);
        EXPECT_TRUE(dec.is_marked(l))
            << "lca(" << marked[i] << "," << marked[j] << ")=" << l << " unmarked";
      }
    // Root marked (property 1).
    EXPECT_TRUE(dec.is_marked(0));
  }
}

TEST(Decomposition, SegmentsAreEdgeDisjointAndCoverTree) {
  Rng rng(102);
  DecompSetup s(random_weighted(80, rng));
  auto dec = s.decompose();
  std::set<EdgeId> seen;
  for (int i = 0; i < dec.num_segments(); ++i)
    for (EdgeId e : dec.segment(i).highway) {
      EXPECT_TRUE(seen.insert(e).second) << "highway edge in two segments";
    }
  // Every tree edge belongs to exactly one segment.
  for (VertexId v = 0; v < s.g.num_vertices(); ++v) {
    const EdgeId pe = s.mst.tree.parent_edge(v);
    if (pe == kNoEdge) continue;
    EXPECT_GE(dec.seg_of_edge(pe), 0);
    EXPECT_LT(dec.seg_of_edge(pe), dec.num_segments());
  }
}

TEST(Decomposition, HighwayStructure) {
  Rng rng(103);
  DecompSetup s(random_weighted(70, rng));
  auto dec = s.decompose();
  for (int i = 0; i < dec.num_segments(); ++i) {
    const Segment& seg = dec.segment(i);
    EXPECT_TRUE(dec.is_marked(seg.r));
    EXPECT_TRUE(dec.is_marked(seg.d));
    ASSERT_EQ(seg.highway_vertices.size(), seg.highway.size() + 1);
    EXPECT_EQ(seg.highway_vertices.front(), seg.r);
    EXPECT_EQ(seg.highway_vertices.back(), seg.d);
    // Consecutive highway vertices are parent/child along the tree.
    for (std::size_t j = 0; j + 1 < seg.highway_vertices.size(); ++j) {
      EXPECT_EQ(s.mst.tree.parent(seg.highway_vertices[j + 1]), seg.highway_vertices[j]);
      // Interior vertices unmarked.
      if (j >= 1) {
        EXPECT_FALSE(dec.is_marked(seg.highway_vertices[j]));
      }
    }
  }
}

TEST(Decomposition, SegDepthAndAncPathsConsistent) {
  Rng rng(104);
  DecompSetup s(random_weighted(60, rng));
  auto dec = s.decompose();
  for (VertexId v = 0; v < s.g.num_vertices(); ++v) {
    const int sg = dec.seg_of_vertex(v);
    if (sg < 0) continue;  // root
    const Segment& seg = dec.segment(sg);
    // Walking up seg_depth(v) steps lands exactly on the segment root.
    VertexId x = v;
    for (int i = 0; i < dec.seg_depth(v); ++i) x = s.mst.tree.parent(x);
    EXPECT_EQ(x, seg.r);
    // anc paths agree with the walk.
    const auto& edges = dec.anc_path_edges(v);
    ASSERT_EQ(static_cast<int>(edges.size()), dec.seg_depth(v));
    VertexId y = v;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      EXPECT_EQ(edges[i], s.mst.tree.parent_edge(y));
      y = s.mst.tree.parent(y);
    }
    // Attachment point is on the highway and is an ancestor of v.
    const VertexId a = seg.highway_vertices[static_cast<std::size_t>(dec.attach_pos(v))];
    EXPECT_TRUE(s.mst.tree.is_ancestor(a, v));
    EXPECT_EQ(a, s.mst.tree.lca(v, seg.d));
  }
}

TEST(Decomposition, SkeletonTreeMatchesMarkedAncestors) {
  Rng rng(105);
  DecompSetup s(random_weighted(90, rng));
  auto dec = s.decompose();
  for (VertexId v : dec.marked_vertices()) {
    if (v == 0) continue;
    const VertexId p = dec.skeleton_parent(v);
    ASSERT_NE(p, kNoVertex);
    EXPECT_TRUE(dec.is_marked(p));
    EXPECT_TRUE(s.mst.tree.is_ancestor(p, v));
    // No marked vertex strictly between p and v.
    VertexId x = s.mst.tree.parent(v);
    while (x != p) {
      EXPECT_FALSE(dec.is_marked(x));
      x = s.mst.tree.parent(x);
    }
  }
}

TEST(Decomposition, SkeletonPathSegmentsComposeTreePath) {
  Rng rng(106);
  DecompSetup s(random_weighted(75, rng));
  auto dec = s.decompose();
  const auto& marked = dec.marked_vertices();
  for (std::size_t i = 0; i < marked.size(); ++i)
    for (std::size_t j = i + 1; j < marked.size() && j < i + 6; ++j) {
      const auto segs = dec.skeleton_path_segments(marked[i], marked[j]);
      std::set<EdgeId> from_segs;
      for (int sidx : segs)
        for (EdgeId e : dec.segment(sidx).highway) from_segs.insert(e);
      const auto path = s.mst.tree.path_edges(marked[i], marked[j]);
      EXPECT_EQ(from_segs, std::set<EdgeId>(path.begin(), path.end()))
          << marked[i] << " .. " << marked[j];
    }
}

TEST(Decomposition, SegmentDiameterBound) {
  Rng rng(107);
  for (int n : {64, 121, 196}) {
    DecompSetup s(random_weighted(n, rng));
    auto dec = s.decompose();
    const double sq = std::sqrt(static_cast<double>(n));
    EXPECT_LE(dec.max_segment_diameter(), static_cast<int>(10 * sq) + 4) << "n=" << n;
  }
}

TEST(Decomposition, SingleFragmentDegeneratesGracefully) {
  // A tiny graph collapses into one fragment; the whole tree becomes
  // root-hanging segments.
  Rng rng(108);
  Graph g = with_weights(torus(3, 3), WeightModel::kUniform, rng);
  DecompSetup s(g);
  auto dec = s.decompose();
  EXPECT_GE(dec.num_segments(), 1);
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    const EdgeId pe = s.mst.tree.parent_edge(v);
    EXPECT_GE(dec.seg_of_edge(pe), 0);
  }
}

TEST(SegmentBroadcastAndAggregate, DeliverPerSegment) {
  Rng rng(109);
  DecompSetup s(random_weighted(50, rng));
  auto dec = s.decompose();
  // Aggregate: count members per segment.
  std::vector<std::uint64_t> ones(static_cast<std::size_t>(s.g.num_vertices()), 1);
  const auto counts = segment_aggregate(s.net, dec, ones, CombineOp::kSum, 0);
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  EXPECT_EQ(total, static_cast<std::uint64_t>(s.g.num_vertices() - 1));  // root has no segment
  // Broadcast: members receive their segment's list.
  std::vector<std::vector<KeyedItem>> lists(static_cast<std::size_t>(dec.num_segments()));
  for (int i = 0; i < dec.num_segments(); ++i)
    lists[static_cast<std::size_t>(i)].push_back(KeyedItem{static_cast<std::uint64_t>(i), 0, 0});
  const auto got = segment_broadcast(s.net, dec, lists);
  for (VertexId v = 0; v < s.g.num_vertices(); ++v) {
    if (dec.seg_of_vertex(v) < 0) continue;
    ASSERT_EQ(got[static_cast<std::size_t>(v)].size(), 1u);
    EXPECT_EQ(got[static_cast<std::size_t>(v)][0].key,
              static_cast<std::uint64_t>(dec.seg_of_vertex(v)));
  }
}

}  // namespace
}  // namespace deck
