#include <gtest/gtest.h>

#include "ecss/aug_framework.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/mst_seq.hpp"
#include "support/rng.hpp"

namespace deck {
namespace {

TEST(RoundedCeExponent, KnownValues) {
  // Exponent = min j with 2^j > ce/w (the "next power of two" of §2.1).
  EXPECT_EQ(rounded_ce_exponent(1, 1), 1);   // 2^1 = 2 > 1
  EXPECT_EQ(rounded_ce_exponent(2, 1), 2);   // 2^2 = 4 > 2 (strictly greater)
  EXPECT_EQ(rounded_ce_exponent(3, 1), 2);
  EXPECT_EQ(rounded_ce_exponent(4, 1), 3);
  EXPECT_EQ(rounded_ce_exponent(1, 2), 0);   // 1/2: 2^0 = 1 > 0.5 (not strict at 2^-1)
  EXPECT_EQ(rounded_ce_exponent(1, 3), -1);  // 1/3: 2^-1 = 0.5 > 1/3
  // 2^-9 < 1/1024 < 2^-10? no: 2^-10 = 1/1024, need > => -9
  EXPECT_EQ(rounded_ce_exponent(1, 1024), -9);
  EXPECT_EQ(rounded_ce_exponent(1000, 1), 10);  // 1024 > 1000
}

TEST(RoundedCeExponent, MonotoneInCeAndAntitoneInW) {
  int prev = rounded_ce_exponent(1, 5);
  for (int ce = 2; ce <= 64; ++ce) {
    const int cur = rounded_ce_exponent(ce, 5);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  prev = rounded_ce_exponent(37, 1);
  for (Weight w = 2; w <= 64; ++w) {
    const int cur = rounded_ce_exponent(37, w);
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

TEST(AugState, BridgeCoverageLifecycle) {
  // Path of two triangles; one fixing chord.
  Graph g(6);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 0, 1);
  g.add_edge(2, 3, 1);
  g.add_edge(3, 4, 1);
  g.add_edge(4, 5, 1);
  g.add_edge(5, 3, 1);
  const EdgeId chord = g.add_edge(1, 4, 2);
  std::vector<char> h(static_cast<std::size_t>(g.num_edges()), 1);
  h[static_cast<std::size_t>(chord)] = 0;
  AugState st(g, h, 1, 7);
  EXPECT_EQ(st.num_cuts(), 1);  // the bridge 2-3
  EXPECT_EQ(st.num_uncovered(), 1);
  EXPECT_EQ(st.coverage(chord), 1);
  st.add_to_a(chord);
  EXPECT_TRUE(st.all_covered());
  EXPECT_EQ(st.coverage(chord), 0);  // already in A
  const auto mask = st.result_mask();
  EXPECT_TRUE(is_k_edge_connected(g, mask, 2));
}

TEST(AugState, CutPairCoverageCounts) {
  // 4-cycle + uncovered chords: state over cut size 2.
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 1);
  g.add_edge(3, 0, 1);
  const EdgeId c02 = g.add_edge(0, 2, 1);
  const EdgeId c13 = g.add_edge(1, 3, 1);
  std::vector<char> h(static_cast<std::size_t>(g.num_edges()), 1);
  h[static_cast<std::size_t>(c02)] = 0;
  h[static_cast<std::size_t>(c13)] = 0;
  AugState st(g, h, 2, 3);
  EXPECT_EQ(st.num_cuts(), 6);  // all pairs of the 4-cycle
  EXPECT_EQ(st.coverage(c02), 4);
  EXPECT_EQ(st.coverage(c13), 4);
  st.add_to_a(c02);
  EXPECT_EQ(st.num_uncovered(), 2);
  EXPECT_EQ(st.coverage(c13), 2);
  st.add_to_a(c13);
  EXPECT_TRUE(st.all_covered());
  EXPECT_TRUE(is_k_edge_connected(g, st.result_mask(), 3));
}

TEST(AugState, HigherCutSizesViaKarger) {
  Rng rng(17);
  Graph g = random_kec(12, 4, 10, rng);
  if (edge_connectivity(g) < 4) GTEST_SKIP();
  // H = some 3-connected subgraph: take greedy 3-ECSS edges.
  // Simpler: H = everything except a few removable edges; fall back to all.
  std::vector<char> h(static_cast<std::size_t>(g.num_edges()), 1);
  AugState st(g, h, 3, 5);
  // All-edges H that is 4-connected has no 3-cuts; otherwise all its 3-cuts
  // are enumerated. Either way adding nothing keeps counts consistent.
  EXPECT_EQ(st.num_uncovered(), st.num_cuts());
}

TEST(KruskalFilterEquivalence, MatchesExplicitMstFilter) {
  // Claim 4.1/4.2: an active candidate joins A iff it is in the MST under
  // weights {0: A, 1: active, 2: rest}. Verify the Kruskal filter against
  // an explicit MST computation on random instances.
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = random_kec(16, 2, 14, rng);
    // Random disjoint base forest + random candidate set.
    std::vector<EdgeId> base, cands;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto roll = rng.next_below(4);
      if (roll == 0) base.push_back(e);
      else if (roll == 1) cands.push_back(e);
    }
    // Make the base a forest (drop base edges closing cycles).
    base = kruskal_filter(g, {}, base);

    // Explicit MST with weights {0,1,2} and id tie-breaks.
    Graph weighted(g.num_vertices());
    std::vector<int> cls(static_cast<std::size_t>(g.num_edges()), 2);
    for (EdgeId e : base) cls[static_cast<std::size_t>(e)] = 0;
    for (EdgeId e : cands)
      if (cls[static_cast<std::size_t>(e)] == 2) cls[static_cast<std::size_t>(e)] = 1;
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      weighted.add_edge(g.edge(e).u, g.edge(e).v, cls[static_cast<std::size_t>(e)]);
    std::vector<char> in_mst(static_cast<std::size_t>(g.num_edges()), 0);
    for (EdgeId e : kruskal_mst(weighted)) in_mst[static_cast<std::size_t>(e)] = 1;

    std::vector<EdgeId> expect;
    for (EdgeId e : cands)
      if (in_mst[static_cast<std::size_t>(e)] && cls[static_cast<std::size_t>(e)] == 1)
        expect.push_back(e);
    std::vector<EdgeId> pure_cands;
    for (EdgeId e : cands)
      if (cls[static_cast<std::size_t>(e)] == 1) pure_cands.push_back(e);
    auto got = kruskal_filter(g, base, pure_cands);
    std::sort(got.begin(), got.end());
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(got, expect) << "trial " << trial;
  }
}

}  // namespace
}  // namespace deck
