// Randomized property suites tying the whole stack together: for every
// seed/family combination the three headline algorithms must produce
// k-edge-connected outputs, the TAP accounting invariants of §3.3 must hold,
// and the path-case decomposition used by the distributed TAP must agree
// with ground-truth tree paths.

#include <gtest/gtest.h>

#include <cmath>

#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "decomp/segments.hpp"
#include "ecss/distributed_2ecss.hpp"
#include "ecss/distributed_3ecss.hpp"
#include "ecss/distributed_kecss.hpp"
#include "ecss/lower_bounds.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/mst_seq.hpp"
#include "mst/distributed_mst.hpp"
#include "support/rng.hpp"
#include "tap/seq_tap.hpp"
#include "tap/tap_instance.hpp"

namespace deck {
namespace {

class SeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweep, TwoEcssAlwaysTwoConnected) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 20 + GetParam() * 7 % 60;
  Graph g = with_weights(random_kec(n, 2, n, rng), WeightModel::kUniform, rng);
  Network net(g);
  TapOptions opt;
  opt.seed = static_cast<std::uint64_t>(GetParam());
  const Ecss2Result r = distributed_2ecss(net, opt);
  ASSERT_TRUE(is_k_edge_connected_subset(g, r.edges, 2)) << "seed " << GetParam();
  EXPECT_GE(r.weight, kecss_lower_bound(g, 2));
}

TEST_P(SeedSweep, KEcssAlwaysKConnected) {
  const int k = 2 + GetParam() % 3;
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 13);
  const int n = 14 + GetParam() % 16;
  Graph g = with_weights(random_kec(n, k, n, rng), WeightModel::kUniform, rng);
  Network net(g);
  KecssOptions opt;
  opt.seed = static_cast<std::uint64_t>(GetParam());
  const KecssResult r = distributed_kecss(net, k, opt);
  ASSERT_TRUE(is_k_edge_connected_subset(g, r.edges, k)) << "seed " << GetParam() << " k " << k;
}

TEST_P(SeedSweep, ThreeEcssAlwaysThreeConnected) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 29);
  const int n = 14 + (GetParam() * 5) % 30;
  Graph g = random_kec(n, 3, n, rng);
  Network net(g);
  Ecss3Options opt;
  opt.seed = static_cast<std::uint64_t>(GetParam());
  const Ecss3Result r = distributed_3ecss_unweighted(net, opt);
  ASSERT_TRUE(is_k_edge_connected_subset(g, r.edges, 3)) << "seed " << GetParam();
}

TEST_P(SeedSweep, GreedyTapLemma35Accounting) {
  // Lemma 3.5-style check for the sequential greedy: the augmentation
  // weight is bounded by the harmonic accounting against any cover.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31);
  TapInstance inst = random_tap_instance(16 + GetParam() % 20, 10, 1, rng);
  const auto aug = greedy_tap(inst);
  ASSERT_TRUE(inst.covers_all(aug));
  const double logn = std::log2(static_cast<double>(inst.g.num_vertices()));
  // All-links is a cover; greedy must be within O(log n) of the best cover,
  // in particular within (1 + log n) * (weight of any single full cover
  // since OPT <= that cover).
  Weight all_links = 0;
  for (EdgeId e : inst.links()) all_links += inst.g.edge(e).w;
  EXPECT_LE(static_cast<double>(inst.weight_of(aug)),
            (1.0 + logn) * static_cast<double>(all_links));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range(1, 13));

TEST(PathDecomposition, LinkCoverageZonesMatchTreePaths) {
  // The distributed TAP counts coverage from per-endpoint zones (anc paths,
  // own-segment highways, skeleton chains). Verify against ground truth:
  // run the machinery's classification indirectly by checking that the
  // distributed TAP coverage equals tree-path coverage on many instances.
  Rng rng(424242);
  for (int trial = 0; trial < 4; ++trial) {
    TapInstance inst = random_tap_instance(40 + trial * 17, 30, 1, rng);
    Network net(inst.g);
    TapOptions opt;
    opt.seed = trial + 1;
    const TapResult r = distributed_tap_standalone(net, inst, opt);
    // covers_all uses true tree paths; success implies the zone
    // decomposition marked exactly the right edges (an under-count would
    // leave uncovered edges; an over-count would terminate before covering).
    ASSERT_TRUE(inst.covers_all(r.augmentation)) << "trial " << trial;
  }
}

TEST(MstProperty, DistributedEqualsKruskalManySeeds) {
  for (int seed = 1; seed <= 6; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 1001);
    Graph g = with_weights(random_kec(30 + seed * 11, 2, 50, rng), WeightModel::kPolynomial, rng);
    Network net(g);
    RootedTree bfs = distributed_bfs(net, 0);
    const MstResult r = distributed_mst(net, bfs);
    auto a = r.mst_edges;
    auto b = kruskal_mst(g);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b) << "seed " << seed;
  }
}

TEST(DecompositionProperty, InvariantsAcrossFamilies) {
  Rng rng(777);
  for (auto make : {+[](Rng& r) { return with_weights(torus(6, 8), WeightModel::kUniform, r); },
                    +[](Rng& r) {
                      return with_weights(ring_of_cliques(6, 6, 2, r), WeightModel::kUniform, r);
                    },
                    +[](Rng& r) { return with_weights(hypercube(6), WeightModel::kUniform, r); }}) {
    Graph g = make(rng);
    Network net(g);
    RootedTree bfs = distributed_bfs(net, 0);
    MstResult mst = distributed_mst(net, bfs);
    const CommForest f = CommForest::from_tree(bfs);
    SegmentDecomposition dec(net, mst.tree, mst.fragment, mst.global_edges, f, 0);
    // Every non-root vertex is in exactly one segment; edges partition.
    for (VertexId v = 1; v < g.num_vertices(); ++v) {
      ASSERT_GE(dec.seg_of_vertex(v), 0) << g.summary();
      ASSERT_EQ(static_cast<int>(dec.anc_path_edges(v).size()), dec.seg_depth(v));
    }
    const double sq = std::sqrt(static_cast<double>(g.num_vertices()));
    EXPECT_LE(dec.max_segment_diameter(), static_cast<int>(12 * sq) + 4) << g.summary();
  }
}

}  // namespace
}  // namespace deck
