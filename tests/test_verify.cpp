#include <gtest/gtest.h>

#include "congest/network.hpp"
#include "cycles/verify.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace deck {
namespace {

TEST(Verify2Ec, AcceptsTwoConnectedFamilies) {
  for (Graph g : {circulant(16, 1), torus(4, 5), hypercube(4)}) {
    Network net(g);
    const VerifyResult r = verify_2_edge_connected(net, 1);
    EXPECT_TRUE(r.is_k_connected) << g.summary();
    EXPECT_TRUE(r.witness.empty());
  }
}

TEST(Verify2Ec, RejectsBridgesWithWitness) {
  // Two triangles joined by a bridge.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  const EdgeId bridge = g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  Network net(g);
  const VerifyResult r = verify_2_edge_connected(net, 1);
  EXPECT_FALSE(r.is_k_connected);
  ASSERT_EQ(r.witness.size(), 1u);
  EXPECT_EQ(r.witness[0], bridge);
}

TEST(Verify3Ec, AcceptsThreeConnectedFamilies) {
  Rng rng(5);
  for (Graph g : {hypercube(4), torus(4, 5), random_kec(20, 3, 30, rng)}) {
    ASSERT_GE(edge_connectivity(g), 3) << g.summary();
    Network net(g);
    const VerifyResult r = verify_3_edge_connected(net, 2);
    EXPECT_TRUE(r.is_k_connected) << g.summary();
  }
}

TEST(Verify3Ec, RejectsCutPairsWithWitness) {
  // A cycle: every pair of edges is a cut pair.
  Graph g = circulant(10, 1);
  Network net(g);
  const VerifyResult r = verify_3_edge_connected(net, 3);
  EXPECT_FALSE(r.is_k_connected);
  ASSERT_EQ(r.witness.size(), 2u);
  // Witness must be a genuine cut pair: removing both disconnects.
  std::vector<char> mask(static_cast<std::size_t>(g.num_edges()), 1);
  mask[static_cast<std::size_t>(r.witness[0])] = 0;
  mask[static_cast<std::size_t>(r.witness[1])] = 0;
  EXPECT_EQ(edge_connectivity(g, mask), 0);
}

TEST(Verify, RunsInDiameterRounds) {
  Graph g = torus(3, 24);  // high diameter
  Network net(g);
  verify_2_edge_connected(net, 7);
  // Label scan + BFS + verdict: a small constant times D.
  EXPECT_LE(net.rounds(), 8u * 30u);
}

TEST(Verify, AgreesWithExactConnectivityOnRandomGraphs) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = random_kec(16, 2, static_cast<int>(rng.next_below(12)), rng);
    const int lambda = edge_connectivity(g);
    Network net(g);
    EXPECT_EQ(verify_2_edge_connected(net, trial).is_k_connected, lambda >= 2) << trial;
    Network net2(g);
    EXPECT_EQ(verify_3_edge_connected(net2, trial).is_k_connected, lambda >= 3) << trial;
  }
}

}  // namespace
}  // namespace deck
