#pragma once

// Shared helpers for the sketch-subsystem test suites (test_sketch,
// test_shard, test_sketch_io, test_recovery) — one definition of the edge
// normalization and the churned-stream workload, so every suite tests the
// same thing.

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "sketch/sketch_connectivity.hpp"
#include "sketch/stream.hpp"
#include "support/rng.hpp"

namespace deck {

/// Flattens recovered forests into a sorted list of normalized (lo, hi)
/// vertex pairs — the order-insensitive edge-set fingerprint the suites
/// compare.
inline std::vector<std::pair<VertexId, VertexId>> sorted_pairs(
    const std::vector<std::vector<SketchEdge>>& forests) {
  std::vector<std::pair<VertexId, VertexId>> out;
  for (const auto& f : forests)
    for (const SketchEdge& e : f) out.emplace_back(std::min(e.u, e.v), std::max(e.u, e.v));
  std::sort(out.begin(), out.end());
  return out;
}

/// Standard dynamic-stream workload: a shuffled k-edge-connected graph with
/// transient insert/delete churn mixed in (net effect zero).
inline GraphStream churned_stream(int n, int k, std::uint64_t seed) {
  Rng rng(seed);
  Graph g = random_kec(n, k, 2 * n, rng);
  GraphStream s = GraphStream::from_graph(g, rng);
  s.churn(g.num_edges() / 2, rng);
  return s;
}

}  // namespace deck
