#include <gtest/gtest.h>

#include "congest/network.hpp"
#include "ecss/distributed_3ecss.hpp"
#include "ecss/lower_bounds.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace deck {
namespace {

class Weighted3Sweep : public ::testing::TestWithParam<std::tuple<int, int, WeightModel>> {};

TEST_P(Weighted3Sweep, OutputIsThreeEdgeConnected) {
  const auto [n, extra, wm] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 3 + extra);
  Graph g = with_weights(random_kec(n, 3, extra, rng), wm, rng);
  ASSERT_GE(edge_connectivity(g), 3);
  Network net(g);
  Ecss3Options opt;
  opt.seed = static_cast<std::uint64_t>(n);
  const Ecss3WeightedResult r = distributed_3ecss_weighted(net, opt);
  EXPECT_TRUE(is_k_edge_connected_subset(g, r.edges, 3)) << "n=" << n;
  EXPECT_GE(r.weight, kecss_lower_bound(g, 3));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Weighted3Sweep,
    ::testing::Values(std::make_tuple(12, 12, WeightModel::kUniform),
                      std::make_tuple(16, 16, WeightModel::kUniform),
                      std::make_tuple(24, 24, WeightModel::kPolynomial),
                      std::make_tuple(32, 32, WeightModel::kUniform),
                      std::make_tuple(32, 40, WeightModel::kZeroHeavy),
                      std::make_tuple(48, 48, WeightModel::kUnit)));

TEST(Weighted3Ecss, PrefersCheapEdges) {
  // Graph = expensive 3-connected core + cheap parallel structure; the
  // algorithm should use mostly cheap edges.
  Rng rng(5);
  Graph topo = random_kec(24, 3, 40, rng);
  Graph g(topo.num_vertices());
  for (EdgeId e = 0; e < topo.num_edges(); ++e) {
    // First ~half the edges cheap, rest expensive.
    g.add_edge(topo.edge(e).u, topo.edge(e).v, e % 2 == 0 ? 1 : 100);
  }
  if (edge_connectivity(g) < 3) GTEST_SKIP();
  Network net(g);
  const Ecss3WeightedResult r = distributed_3ecss_weighted(net, Ecss3Options{});
  ASSERT_TRUE(is_k_edge_connected_subset(g, r.edges, 3));
  // Using all edges would cost much more; the output should avoid most
  // expensive edges when the cheap half suffices for connectivity.
  EXPECT_LT(r.weight, g.total_weight());
}

TEST(Weighted3Ecss, UnitWeightsAgreeWithUnweightedVariantQuality) {
  Rng rng(7);
  Graph g = random_kec(32, 3, 32, rng);
  Network net_w(g);
  const auto rw = distributed_3ecss_weighted(net_w, Ecss3Options{});
  ASSERT_TRUE(is_k_edge_connected_subset(g, rw.edges, 3));
  Network net_u(g);
  const auto ru = distributed_3ecss_unweighted(net_u, Ecss3Options{});
  ASSERT_TRUE(is_k_edge_connected_subset(g, ru.edges, 3));
  // Both are O(log n)-approximations; sizes must be in the same ballpark.
  EXPECT_LE(rw.edges.size(), 3 * ru.edges.size());
  EXPECT_LE(ru.edges.size(), 3 * rw.edges.size());
}

}  // namespace
}  // namespace deck
