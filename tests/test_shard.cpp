#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "sketch/shard.hpp"
#include "sketch/sketch_io.hpp"
#include "sketch/stream.hpp"
#include "sketch_test_util.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace deck {
namespace {

TEST(SplitSeed, MatchesSplitMixStream) {
  // split_seed(base, i) is defined as the i-th SplitMix64 output — the O(1)
  // jump must agree with actually stepping the generator.
  const std::uint64_t base = 0xfeedULL;
  std::uint64_t state = base;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const std::uint64_t stepped = splitmix64(state);
    EXPECT_EQ(split_seed(base, i), stepped) << i;
  }
}

TEST(SplitSeed, NearbyBasesAndIndicesDecorrelate) {
  // The failure mode of `base + f(index)` seeding: adjacent bases sharing an
  // arithmetic progression collide across streams. split_seed children must
  // all be distinct across a block of nearby (base, index) pairs.
  std::vector<std::uint64_t> seen;
  for (std::uint64_t base = 0; base < 8; ++base)
    for (std::uint64_t i = 0; i < 64; ++i) seen.push_back(split_seed(base, i));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(ThreadPool, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, WaitRethrowsFirstJobError) {
  ThreadPool pool(2);
  pool.submit([] { throw std::logic_error("boom"); });
  EXPECT_THROW(pool.wait(), std::logic_error);
  // The pool stays usable after an error is collected.
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), (round + 1) * 10);
  }
}

TEST(ThreadPool, ForRangeCoversRangeExactlyOnce) {
  for (int threads : {1, 3, 8}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.for_range(hits.size(), [&hits](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    // Empty ranges are a no-op.
    pool.for_range(0, [](std::size_t, std::size_t) { FAIL() << "called on empty range"; });
  }
}

TEST(ThreadPool, ForRangeRethrowsBodyError) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.for_range(100,
                              [](std::size_t b, std::size_t) {
                                if (b == 0) throw std::logic_error("boom");
                              }),
               std::logic_error);
  // Pool stays usable afterwards.
  std::atomic<int> ran{0};
  pool.for_range(10, [&ran](std::size_t b, std::size_t e) {
    ran.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(ran.load(), 10);
}

TEST(BatchQueue, EachBatchClaimedExactlyOnce) {
  std::vector<SourceBatch> batches;
  for (int i = 0; i < 200; ++i) batches.push_back({static_cast<VertexId>(i % 13), {}});
  BatchQueue q(std::move(batches));
  ASSERT_EQ(q.size(), 200u);

  std::vector<std::vector<const SourceBatch*>> claims(4);
  ThreadPool pool(4);
  for (int t = 0; t < 4; ++t)
    pool.submit([&q, &claims, t] {
      while (const SourceBatch* b = q.try_pop()) claims[static_cast<std::size_t>(t)].push_back(b);
    });
  pool.wait();

  std::vector<const SourceBatch*> all;
  for (const auto& c : claims) all.insert(all.end(), c.begin(), c.end());
  EXPECT_EQ(all.size(), 200u);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());  // no batch handed out twice
  EXPECT_EQ(q.claimed(), 200u);
  EXPECT_EQ(q.try_pop(), nullptr);
}

TEST(CollectBatches, MatchesApplyBatchedDelivery) {
  GraphStream s = churned_stream(24, 2, 11);
  std::vector<SourceBatch> expected;
  apply_batched(s, 7, [&expected](VertexId src, std::span<const VertexDelta> deltas) {
    expected.push_back({src, std::vector<VertexDelta>(deltas.begin(), deltas.end())});
  });
  const std::vector<SourceBatch> got = collect_batches(s, 7);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].src, expected[i].src);
    ASSERT_EQ(got[i].deltas.size(), expected[i].deltas.size());
    for (std::size_t j = 0; j < got[i].deltas.size(); ++j) {
      EXPECT_EQ(got[i].deltas[j].dst, expected[i].deltas[j].dst);
      EXPECT_EQ(got[i].deltas[j].delta, expected[i].deltas[j].delta);
    }
  }
}

TEST(ShardOf, PartitionsEveryVertexInRange) {
  for (Sharding mode : {Sharding::kHash, Sharding::kVertexRange}) {
    ShardOptions opt;
    opt.shards = 5;
    opt.sharding = mode;
    for (VertexId v = 0; v < 64; ++v) {
      const int s = shard_of(v, 64, opt);
      EXPECT_GE(s, 0);
      EXPECT_LT(s, opt.shards);
    }
  }
  ShardOptions dyn;
  dyn.sharding = Sharding::kDynamic;
  EXPECT_THROW(shard_of(0, 4, dyn), std::logic_error);
}

TEST(ShardedIngest, BankBitIdenticalToSequential) {
  // The heart of the sharding contract: for every shard count and mode, the
  // merged bank's serialized bytes equal the sequential ingester's — not
  // merely an equivalent sketch, the identical one.
  const GraphStream s = churned_stream(48, 2, 21);
  SketchOptions sopt;
  sopt.seed = 99;
  sopt.max_forests = 2;

  SketchConnectivity sequential(s.num_vertices(), sopt);
  for (const StreamUpdate& u : s.updates()) sequential.update(u.u, u.v, u.insert ? 1 : -1);
  const std::vector<std::uint8_t> want = encode_bank(sequential);

  for (Sharding mode : {Sharding::kHash, Sharding::kVertexRange, Sharding::kDynamic}) {
    for (int shards : {1, 2, 3, 4, 8}) {
      ShardOptions opt;
      opt.shards = shards;
      opt.batch_size = 17;
      opt.sharding = mode;
      ShardIngestResult r = apply_sharded(s, sopt, opt);
      EXPECT_EQ(encode_bank(r.sketch), want)
          << "shards=" << shards << " mode=" << static_cast<int>(mode);
      // Accounting: every directed half ingested exactly once, somewhere.
      EXPECT_EQ(std::accumulate(r.shard_halves.begin(), r.shard_halves.end(), std::size_t{0}),
                2 * s.size());
    }
  }
}

TEST(ShardedIngest, ShardCountNeverChangesRecoveredForests) {
  // Property test for the seed-splitting fix: across seeds, shard counts,
  // modes, and batch sizes, the recovered forest set is the sequential one.
  for (std::uint64_t seed : {3u, 7u, 31u}) {
    const GraphStream s = churned_stream(40, 2, seed);
    SketchOptions sopt;
    sopt.seed = 1000 + seed;
    const SparsifyResult sequential = sparsify_stream(s, 2, sopt);
    const auto want = sorted_pairs(sequential.forests);
    for (Sharding mode : {Sharding::kHash, Sharding::kVertexRange, Sharding::kDynamic}) {
      for (int shards : {2, 4, 8}) {
        ShardOptions opt;
        opt.shards = shards;
        opt.batch_size = shards == 4 ? 1 : 64;  // also vary batching
        opt.sharding = mode;
        const SparsifyResult sharded = sharded_sparsify_stream(s, 2, sopt, opt);
        EXPECT_EQ(sorted_pairs(sharded.forests), want)
            << "seed=" << seed << " shards=" << shards << " mode=" << static_cast<int>(mode);
        EXPECT_EQ(sharded.copies_used, sequential.copies_used);
      }
    }
  }
}

TEST(ShardedIngest, CertificateMatchesSequentialSparsify) {
  const GraphStream s = churned_stream(64, 3, 5);
  SketchOptions sopt;
  sopt.seed = 4242;
  const SparsifyResult a = sparsify_stream(s, 3, sopt);
  ShardOptions opt;
  opt.shards = 4;
  const SparsifyResult b = sharded_sparsify_stream(s, 3, sopt, opt);
  ASSERT_EQ(a.certificate.num_edges(), b.certificate.num_edges());
  for (const Edge& e : a.certificate.edges()) EXPECT_TRUE(b.certificate.has_edge(e.u, e.v));
}

TEST(SketchBankMerge, SplitStreamsMergeToWholeStream) {
  // Merge semantics directly: ingest even-indexed updates into one bank,
  // odd-indexed into another; the merged bank equals the whole-stream bank.
  const GraphStream s = churned_stream(32, 2, 13);
  SketchOptions sopt;
  sopt.seed = 7;

  SketchConnectivity whole(s.num_vertices(), sopt);
  SketchConnectivity even(s.num_vertices(), sopt);
  SketchConnectivity odd(s.num_vertices(), sopt);
  std::size_t i = 0;
  for (const StreamUpdate& u : s.updates()) {
    const int d = u.insert ? 1 : -1;
    whole.update(u.u, u.v, d);
    (i++ % 2 == 0 ? even : odd).update(u.u, u.v, d);
  }
  even.merge(odd);
  EXPECT_EQ(encode_bank(even), encode_bank(whole));
}

TEST(SketchBankMerge, RejectsIncompatibleBanks) {
  SketchOptions a, b;
  a.seed = 1;
  b.seed = 2;
  SketchConnectivity x(8, a), y(8, b), z(9, a);
  EXPECT_FALSE(x.compatible(y));  // seed mismatch
  EXPECT_FALSE(x.compatible(z));  // vertex-count mismatch
  EXPECT_THROW(x.merge(y), std::logic_error);
  EXPECT_THROW(x.merge(z), std::logic_error);
}

TEST(SketchBankMerge, RejectsMidRecoveryMerge) {
  Rng rng(3);
  Graph g = random_kec(16, 2, 16, rng);
  SketchOptions sopt;
  sopt.seed = 5;
  SketchConnectivity a(16, sopt), b(16, sopt);
  for (const Edge& e : g.edges()) {
    a.update(e.u, e.v, 1);
    b.update(e.u, e.v, 1);
  }
  (void)a.spanning_forest();  // consumes copies
  ASSERT_GT(a.copies_used(), 0);
  EXPECT_THROW(a.merge(b), std::logic_error);
}

}  // namespace
}  // namespace deck
