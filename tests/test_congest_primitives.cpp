#include <gtest/gtest.h>

#include <map>

#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"

namespace deck {
namespace {

TEST(Network, ChargesAccumulateAndPhaseTrack) {
  Graph g = torus(3, 3);
  Network net(g);
  net.begin_phase("a");
  net.charge(5, 10);
  net.begin_phase("b");
  net.charge(2, 3);
  EXPECT_EQ(net.rounds(), 7u);
  EXPECT_EQ(net.messages(), 13u);
  ASSERT_EQ(net.phases().size(), 2u);
  EXPECT_EQ(net.phases()[0].rounds, 5u);
  EXPECT_EQ(net.phases()[1].messages, 3u);
  net.reset_counters();
  EXPECT_EQ(net.rounds(), 0u);
}

TEST(DistributedBfs, DepthsMatchSequentialAndRoundsMatchEccentricity) {
  Graph g = torus(4, 6);
  Network net(g);
  RootedTree t = distributed_bfs(net, 0);
  const auto dist = bfs_distances(g, 0);
  int ecc = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(t.depth(v), dist[static_cast<std::size_t>(v)]);
    ecc = std::max(ecc, dist[static_cast<std::size_t>(v)]);
  }
  EXPECT_EQ(net.rounds(), static_cast<std::uint64_t>(ecc) + 1);
}

TEST(Convergecast, SumsSubtrees) {
  Graph g = hypercube(3);
  Network net(g);
  RootedTree t = distributed_bfs(net, 0);
  const CommForest f = CommForest::from_tree(t);
  std::vector<std::uint64_t> ones(8, 1);
  const auto acc = convergecast(net, f, ones, CombineOp::kSum);
  EXPECT_EQ(acc[0], 8u);  // root sees everything
}

TEST(Broadcast, DeliversRootValue) {
  Graph g = hypercube(3);
  Network net(g);
  RootedTree t = distributed_bfs(net, 0);
  const CommForest f = CommForest::from_tree(t);
  std::vector<std::uint64_t> val(8, 0);
  val[0] = 42;
  const auto got = broadcast(net, f, val);
  for (auto v : got) EXPECT_EQ(v, 42u);
}

TEST(KeyedMinUpcast, RootLearnsMinPerKey) {
  Graph g = torus(4, 4);
  Network net(g);
  RootedTree t = distributed_bfs(net, 0);
  const CommForest f = CommForest::from_tree(t);
  std::vector<std::vector<KeyedItem>> items(16);
  // Every vertex contributes to key (v % 3) with prio v.
  for (VertexId v = 0; v < 16; ++v)
    items[static_cast<std::size_t>(v)].push_back(
        KeyedItem{static_cast<std::uint64_t>(v % 3), static_cast<std::uint64_t>(100 - v),
                  static_cast<std::uint64_t>(v)});
  const auto fin = keyed_min_upcast(net, f, items);
  std::map<std::uint64_t, std::uint64_t> at_root;
  for (const auto& it : fin[0]) at_root[it.key] = it.payload;
  ASSERT_EQ(at_root.size(), 3u);
  // Min prio = 100 - v maximizes v per residue class: v = 15 (key 0),
  // v = 13 (key 1), v = 14 (key 2).
  EXPECT_EQ(at_root[0], 15u);
  EXPECT_EQ(at_root[1], 13u);
  EXPECT_EQ(at_root[2], 14u);
  // Non-roots hold nothing.
  for (VertexId v = 1; v < 16; ++v) EXPECT_TRUE(fin[static_cast<std::size_t>(v)].empty());
}

TEST(KeyedMinUpcast, RoundsScaleWithDepthPlusKeys) {
  Graph g = circulant(64, 1);  // cycle: BFS depth ~32
  Network net(g);
  RootedTree t = distributed_bfs(net, 0);
  const CommForest f = CommForest::from_tree(t);
  net.reset_counters();
  std::vector<std::vector<KeyedItem>> items(64);
  const int keys = 20;
  for (VertexId v = 0; v < 64; ++v)
    for (int k = 0; k < keys; ++k)
      items[static_cast<std::size_t>(v)].push_back(
          KeyedItem{static_cast<std::uint64_t>(k), static_cast<std::uint64_t>(v), 0});
  keyed_min_upcast(net, f, items);
  // Pipelining: ~height + keys rounds (plus EOS), not height * keys.
  EXPECT_LE(net.rounds(), static_cast<std::uint64_t>(t.height() + keys + 4));
  EXPECT_GE(net.rounds(), static_cast<std::uint64_t>(t.height()));
}

TEST(AncestorMinMerge, DeepestEndpointFinalizesSubtreeMin) {
  // Path 0-1-2-3-4 rooted at 0.
  Graph g(5);
  for (int i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1);
  Network net(g);
  RootedTree t = distributed_bfs(net, 0);
  const CommForest f = CommForest::from_tree(t);
  std::vector<std::vector<KeyedItem>> items(5);
  // Vertex 4 contributes to all its ancestor edges (keys 0..2 = depths of
  // upper endpoints 0..2); vertex 2 contributes to keys 0..1 with better prio.
  for (int d = 0; d <= 2; ++d)
    items[4].push_back(KeyedItem{static_cast<std::uint64_t>(d), 50, 4});
  for (int d = 0; d <= 1; ++d)
    items[2].push_back(KeyedItem{static_cast<std::uint64_t>(d), 10, 2});
  const auto fin = ancestor_min_merge(net, f, items);
  // Edge (1,0): key 0 finalizes at vertex 1 — min prio 10 from vertex 2.
  ASSERT_TRUE(fin[1].has_value());
  EXPECT_EQ(fin[1]->prio, 10u);
  // Edge (3,2): key 2 finalizes at vertex 3 — only vertex 4 contributes.
  ASSERT_TRUE(fin[3].has_value());
  EXPECT_EQ(fin[3]->prio, 50u);
  // Edge (4,3): nobody contributes to key 3.
  EXPECT_FALSE(fin[4].has_value());
}

TEST(PathDowncast, EveryVertexLearnsProperAncestors) {
  Graph g(6);
  for (int i = 0; i + 1 < 6; ++i) g.add_edge(i, i + 1);
  Network net(g);
  RootedTree t = distributed_bfs(net, 0);
  const CommForest f = CommForest::from_tree(t);
  std::vector<KeyedItem> own(6);
  for (VertexId v = 1; v < 6; ++v)
    own[static_cast<std::size_t>(v)] = KeyedItem{static_cast<std::uint64_t>(v) * 10, 0, 0};
  const auto got = path_downcast(net, f, own);
  EXPECT_TRUE(got[0].empty());
  EXPECT_TRUE(got[1].empty());  // parent is the root
  ASSERT_EQ(got[5].size(), 4u);
  EXPECT_EQ(got[5][0].key, 40u);  // parent's item first
  EXPECT_EQ(got[5][3].key, 10u);
}

TEST(PipelinedBroadcast, AllVerticesGetList) {
  Graph g = hypercube(4);
  Network net(g);
  RootedTree t = distributed_bfs(net, 0);
  const CommForest f = CommForest::from_tree(t);
  std::vector<std::vector<KeyedItem>> root_items(16);
  for (int i = 0; i < 7; ++i)
    root_items[0].push_back(KeyedItem{static_cast<std::uint64_t>(i), 0, 0});
  net.reset_counters();
  const auto got = pipelined_broadcast(net, f, root_items);
  for (VertexId v = 0; v < 16; ++v) EXPECT_EQ(got[static_cast<std::size_t>(v)].size(), 7u);
  EXPECT_LE(net.rounds(), static_cast<std::uint64_t>(t.height() + 7));
}

TEST(EdgeExchange, SwapsPayloadsAndChargesMaxLength) {
  Graph g = torus(3, 3);
  Network net(g);
  std::vector<EdgeId> edges{0, 1};
  std::vector<std::vector<std::uint64_t>> fu{{1, 2, 3}, {7}};
  std::vector<std::vector<std::uint64_t>> fv{{4}, {8, 9}};
  const auto r = edge_exchange(net, edges, fu, fv);
  EXPECT_EQ(r.at_v[0], (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(r.at_u[1], (std::vector<std::uint64_t>{8, 9}));
  EXPECT_EQ(net.rounds(), 3u);
  EXPECT_EQ(net.messages(), 7u);
}

}  // namespace
}  // namespace deck
