#include <gtest/gtest.h>

#include <cmath>

#include "congest/network.hpp"
#include "ecss/distributed_2ecss.hpp"
#include "ecss/exact.hpp"
#include "ecss/lower_bounds.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace deck {
namespace {

class Ecss2Sweep : public ::testing::TestWithParam<std::tuple<int, int, WeightModel>> {};

TEST_P(Ecss2Sweep, OutputIsTwoEdgeConnected) {
  const auto [n, extra, wm] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) + extra);
  Graph g = with_weights(random_kec(n, 2, extra, rng), wm, rng);
  Network net(g);
  const Ecss2Result r = distributed_2ecss(net, TapOptions{});
  EXPECT_TRUE(is_k_edge_connected_subset(g, r.edges, 2)) << "n=" << n;
  EXPECT_GE(r.weight, kecss_lower_bound(g, 2));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Ecss2Sweep,
    ::testing::Values(std::make_tuple(16, 10, WeightModel::kUniform),
                      std::make_tuple(32, 20, WeightModel::kUniform),
                      std::make_tuple(48, 48, WeightModel::kUnit),
                      std::make_tuple(64, 64, WeightModel::kPolynomial),
                      std::make_tuple(96, 60, WeightModel::kZeroHeavy),
                      std::make_tuple(128, 96, WeightModel::kUniform)));

TEST(Ecss2, WithinLogFactorOfExactOnSmallInstances) {
  Rng rng(11);
  int checked = 0;
  for (int trial = 0; trial < 20 && checked < 5; ++trial) {
    Graph g = with_weights(random_kec(8, 2, 3, rng), WeightModel::kUniform, rng);
    if (g.num_edges() > 20) continue;
    ++checked;
    Network net(g);
    TapOptions opt;
    opt.seed = trial;
    const Ecss2Result r = distributed_2ecss(net, opt);
    ASSERT_TRUE(is_k_edge_connected_subset(g, r.edges, 2));
    Weight opt_w = 0;
    for (EdgeId e : exact_kecss(g, 2)) opt_w += g.edge(e).w;
    const double bound = 8.0 * (std::log2(8.0) + 2.0);
    EXPECT_LE(static_cast<double>(r.weight), bound * static_cast<double>(opt_w));
  }
  EXPECT_GE(checked, 3);
}

TEST(Ecss2, StructuredFamilies) {
  Rng rng(13);
  for (auto make : {+[](Rng& r) { return with_weights(torus(5, 6), WeightModel::kUniform, r); },
                    +[](Rng& r) { return with_weights(hypercube(5), WeightModel::kUniform, r); },
                    +[](Rng& r) {
                      return with_weights(ring_of_cliques(5, 5, 3, r), WeightModel::kUniform, r);
                    }}) {
    Graph g = make(rng);
    Network net(g);
    const Ecss2Result r = distributed_2ecss(net, TapOptions{});
    EXPECT_TRUE(is_k_edge_connected_subset(g, r.edges, 2)) << g.summary();
  }
}

TEST(Ecss2, RoundsAreSubquadratic) {
  Rng rng(17);
  Graph g = with_weights(random_kec(144, 2, 200, rng), WeightModel::kUniform, rng);
  Network net(g);
  const Ecss2Result r = distributed_2ecss(net, TapOptions{});
  ASSERT_TRUE(is_k_edge_connected_subset(g, r.edges, 2));
  // Sanity envelope: (D + sqrt n) log^2 n with generous constants, far
  // below the trivial O(n^2).
  EXPECT_LT(net.rounds(), 144ull * 144ull);
  EXPECT_GT(r.num_segments, 0);
}

TEST(Ecss2, PhaseBreakdownIsRecorded) {
  Rng rng(19);
  Graph g = with_weights(torus(4, 5), WeightModel::kUniform, rng);
  Network net(g);
  distributed_2ecss(net, TapOptions{});
  bool saw_mst = false, saw_tap = false;
  for (const auto& p : net.phases()) {
    if (p.name.find("mst") != std::string::npos) saw_mst = true;
    if (p.name.find("tap") != std::string::npos) saw_tap = true;
  }
  EXPECT_TRUE(saw_mst);
  EXPECT_TRUE(saw_tap);
}

}  // namespace
}  // namespace deck
