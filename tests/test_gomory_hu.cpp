#include <gtest/gtest.h>

#include "graph/dinic.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/gomory_hu.hpp"
#include "support/rng.hpp"

namespace deck {
namespace {

std::vector<char> all_edges(const Graph& g) {
  return std::vector<char>(static_cast<std::size_t>(g.num_edges()), 1);
}

TEST(GomoryHu, AllPairsMatchDirectMaxFlow) {
  Rng rng(99);
  for (int trial = 0; trial < 6; ++trial) {
    Graph g = random_kec(12, 2, static_cast<int>(rng.next_below(14)), rng);
    const GomoryHuTree t = gomory_hu(g);
    for (VertexId u = 0; u < g.num_vertices(); ++u)
      for (VertexId v = u + 1; v < g.num_vertices(); ++v) {
        EXPECT_EQ(t.min_cut(u, v), st_edge_connectivity(g, all_edges(g), u, v))
            << "trial " << trial << " pair " << u << "," << v;
      }
  }
}

TEST(GomoryHu, GlobalMinEqualsEdgeConnectivity) {
  Rng rng(7);
  for (Graph g : {hypercube(3), torus(3, 4), circulant(10, 2), random_kec(14, 3, 8, rng)}) {
    const GomoryHuTree t = gomory_hu(g);
    std::int64_t global = g.num_edges();
    for (VertexId v = 1; v < g.num_vertices(); ++v)
      global = std::min(global, t.flow[static_cast<std::size_t>(v)]);
    EXPECT_EQ(global, edge_connectivity(g)) << g.summary();
  }
}

TEST(GomoryHu, StructuredValues) {
  // On the 3-cube every pairwise min cut is 3 (edge-transitive, 3-regular).
  const GomoryHuTree t = gomory_hu(hypercube(3));
  for (VertexId u = 0; u < 8; ++u)
    for (VertexId v = u + 1; v < 8; ++v) EXPECT_EQ(t.min_cut(u, v), 3);
}

TEST(GomoryHu, TreeStructureValid) {
  Rng rng(21);
  Graph g = random_kec(20, 2, 12, rng);
  const GomoryHuTree t = gomory_hu(g);
  EXPECT_EQ(t.parent[0], kNoVertex);
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    EXPECT_GE(t.parent[static_cast<std::size_t>(v)], 0);
    EXPECT_GT(t.flow[static_cast<std::size_t>(v)], 0);
  }
}

}  // namespace
}  // namespace deck
