#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "support/rng.hpp"

namespace deck {
namespace {

TEST(Io, RoundTripPreservesGraph) {
  Rng rng(3);
  Graph g = with_weights(random_kec(20, 2, 10, rng), WeightModel::kUniform, rng);
  const Graph back = graph_from_edge_list(to_edge_list(g));
  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(back.edge(e).u, g.edge(e).u);
    EXPECT_EQ(back.edge(e).v, g.edge(e).v);
    EXPECT_EQ(back.edge(e).w, g.edge(e).w);
  }
}

TEST(Io, ParsesCommentsAndBlankLines) {
  const Graph g = graph_from_edge_list("# header comment\n\n3 2\n0 1 5\n# mid comment\n1 2 7\n");
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.edge(1).w, 7);
}

TEST(Io, RejectsMalformedInput) {
  EXPECT_THROW(graph_from_edge_list(""), std::logic_error);
  EXPECT_THROW(graph_from_edge_list("2 1\n"), std::logic_error);
  EXPECT_THROW(graph_from_edge_list("2 1\n0 x 1\n"), std::logic_error);
  EXPECT_THROW(graph_from_edge_list("2 1\n0 5 1\n"), std::logic_error);  // endpoint range
}

TEST(Io, DotContainsEdgesAndHighlights) {
  Graph g(3);
  const EdgeId a = g.add_edge(0, 1, 4);
  g.add_edge(1, 2, 6);
  const std::string dot = to_dot(g, {a});
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  // Only one highlighted edge.
  EXPECT_EQ(dot.find("color=red"), dot.rfind("color=red"));
}

}  // namespace
}  // namespace deck
