// Continuous query serving: a long-lived GraphSession ingests a live
// insert/delete stream through the guttering stage while a SessionServer
// answers certificate queries from concurrent remote clients — the
// open → ingest → query → resume → close lifecycle that replaces the
// one-shot sparsify_stream pipeline.
//
//   cmake -B build -G Ninja && cmake --build build && ./build/serve_queries

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "net/transport.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "sketch/stream.hpp"
#include "support/rng.hpp"

int main() {
  using namespace deck;
  const int n = 96, k = 3;

  // 1. A live workload: a k-edge-connected graph arriving as updates,
  //    split round-robin across two ingest clients.
  Rng rng(7);
  const Graph g = random_kec(n, k, /*extra=*/2 * n, rng);
  std::vector<std::vector<StreamUpdate>> slices(2);
  int i = 0;
  for (const Edge& e : g.edges()) slices[i++ % 2].push_back({e.u, e.v, /*insert=*/true});
  std::printf("workload: %d edges over n=%d, 2 ingest clients\n", g.num_edges(), n);

  // 2. The serving session. Updates buffer in per-vertex-range gutters
  //    (flushed as sorted cache-resident batches into the live ℓ₀ bank);
  //    a query drains the gutters, clones the live bank, and peels the
  //    certificate — ingest resumes untouched afterwards.
  IngestOptions opt;
  opt.sketch.seed = 42;
  opt.gutter.policy.max_halves = 512;
  GraphSession session(n, k, opt);
  SessionServer server(session);

  // 3. Two clients over loopback transports, served concurrently. Client 0
  //    also queries mid-stream and at the end.
  std::vector<std::unique_ptr<Transport>> owned;
  std::vector<Transport*> server_ends, client_ends;
  for (int c = 0; c < 2; ++c) {
    auto [s, cl] = loopback_pair();
    server_ends.push_back(s.get());
    client_ends.push_back(cl.get());
    owned.push_back(std::move(s));
    owned.push_back(std::move(cl));
  }
  std::thread serving([&] { server.serve_all(server_ends); });

  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      ServeClient client(*client_ends[static_cast<std::size_t>(c)]);
      client.hello();
      const std::vector<StreamUpdate>& mine = slices[static_cast<std::size_t>(c)];
      const std::size_t half = mine.size() / 2;
      client.update(std::span<const StreamUpdate>(mine.data(), half));
      if (c == 0) {
        // Mid-stream query: pause/flush/recover/resume on a partial graph.
        const ServeCertificate cert = client.query();
        std::printf("client 0 mid-stream query: %zu certificate edges after ~half the stream\n",
                    cert.edges.size());
      }
      client.update(std::span<const StreamUpdate>(mine.data() + half, mine.size() - half));
      client.bye();
    });
  }
  for (std::thread& t : clients) t.join();
  serving.join();

  // 4. Final query straight on the session (the server has released it):
  //    every client's updates are in the bank — linearity makes the result
  //    identical to a one-shot over the whole stream in any order.
  const SparsifyResult sp = session.query();
  std::printf("final certificate: %d edges (bound k(n-1) = %d), %d-edge-connected: %s\n",
              sp.certificate.num_edges(), k * (n - 1), k,
              is_k_edge_connected(sp.certificate, k) ? "yes" : "NO");

  const SessionStats stats = session.stats();
  std::printf("session: %llu updates, %llu queries, %llu gutter flushes "
              "(%llu size-triggered), %llu bank clones, %llu replays\n",
              static_cast<unsigned long long>(stats.updates),
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.gutter.flushes),
              static_cast<unsigned long long>(stats.gutter.size_flushes),
              static_cast<unsigned long long>(stats.bank_reuses),
              static_cast<unsigned long long>(stats.bank_replays));
  session.close();
  return 0;
}
