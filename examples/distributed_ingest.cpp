// Multi-process sketch ingest + distributed CONGEST execution, end to end:
// four *real* worker processes (fork) each ingest a disjoint slice of the
// update stream into a private ℓ₀ bank and stream it over TCP to the
// coordinator as framed sketch_io chunks; the coordinator merges chunks as
// they arrive (BankAssembler — it never buffers a whole shard bank), peels
// the k forests on a shared thread pool, and feeds the Thurimella
// certificate to the paper's CONGEST algorithms — first on the sequential
// engine, then on the DistributedEngine with a second fleet of forked
// worker processes each owning a vertex range of the certificate network.
//
//   worker process 0..3                     coordinator process
//   ───────────────────                     ───────────────────
//   updates[w::4] ─► bank_w ─► chunks ──TCP──► BankAssembler (merge on
//                                              arrival) ─► recover
//   congest worker 0..1                        │
//   vertex range step ◄──TCP rounds/msgs──► distributed_2ecss / k-ECSS
//
//   cmake -B build -G Ninja && cmake --build build && ./build/distributed_ingest
//
// With --trace-out PATH the run records the obs tracing layer end to end
// and writes one merged chrome://tracing JSON file: coordinator phases and
// engine rounds on pid 0, each forked CONGEST worker's execution on its own
// pid lane, parented under the coordinator's net.execute spans via the
// trace context the Start message carries (docs/tracing.md).
//
// The certificate is bit-identical to single-process
// sharded_sparsify_stream() on the same seeded stream — linearity makes any
// disjoint stream partition merge to the same bank, and split_seed lets
// every process derive the same per-copy sampler seeds with zero shared
// state. The 2-ECSS run on the DistributedEngine must match the sequential
// engine edge for edge, round for round (the engine-identity property).

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "congest/distributed_engine.hpp"
#include "congest/network.hpp"
#include "ecss/distributed_2ecss.hpp"
#include "ecss/distributed_kecss.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "net/ingest.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sketch/shard.hpp"
#include "sketch/stream.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace deck;
  const int n = 96, k = 3, workers = 4;

  std::string trace_out;
  int kill_worker = -1, kill_round = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--kill-worker") == 0 && i + 1 < argc) {
      // --kill-worker N@R: SIGKILL congest worker process N at its R-th
      // engine round — a real mid-phase process death the coordinator must
      // absorb with zero output change.
      const char* spec = argv[++i];
      const char* at = std::strchr(spec, '@');
      if (at == nullptr || std::sscanf(spec, "%d@%d", &kill_worker, &kill_round) != 2 ||
          kill_worker < 0 || kill_round < 1) {
        std::fprintf(stderr, "--kill-worker wants N@R (worker index @ round), got '%s'\n", spec);
        return 1;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--trace-out PATH] [--kill-worker N@R]\n", argv[0]);
      return 1;
    }
  }
  const bool tracing = !trace_out.empty();
  if (tracing) {
    obs::set_enabled(true);
    obs::set_tracing(true);
    obs::set_trace_id(0x5eed);  // any nonzero id names the trace
  }

  // A k-edge-connected graph arrives as a churned dynamic stream. Every
  // process rebuilds the identical seeded stream; in a real deployment each
  // worker would read its slice from its own ingest source instead.
  Rng rng(19);
  Graph g = random_kec(n, k, /*extra=*/2 * n, rng);
  GraphStream stream = GraphStream::from_graph(g, rng);
  stream.churn(/*pairs=*/g.num_edges(), rng);
  std::printf("stream: %zu updates over n=%d, sliced across %d worker processes\n", stream.size(),
              n, workers);

  SketchOptions opt;
  opt.seed = 42;
  opt.max_forests = k;

  // The coordinator listens on an ephemeral loopback port; workers are
  // forked before any thread exists and connect back over TCP.
  TcpListener listener;
  for (std::uint32_t w = 0; w < static_cast<std::uint32_t>(workers); ++w) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      try {
        const std::unique_ptr<Transport> t = tcp_connect("127.0.0.1", listener.port());
        IngestWorkerOptions wopt;
        wopt.target_chunk_bytes = 64 * 1024;  // bounds the coordinator's per-chunk staging
        run_ingest_worker(*t, stream, w, static_cast<std::uint32_t>(workers), wopt);
        _exit(0);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "worker %u: %s\n", w, e.what());
        _exit(1);
      }
    }
  }

  std::vector<std::unique_ptr<Transport>> accepted;
  std::vector<Transport*> raw;
  for (int w = 0; w < workers; ++w) {
    accepted.push_back(listener.accept());
    raw.push_back(accepted.back().get());
  }

  // One shared pool (4 threads) overlaps the four workers' chunk streams
  // with assembly, then runs the Borůvka recovery fan-out.
  IngestCoordinatorOptions copt;
  copt.threads = 4;
  const SparsifyResult remote = coordinated_sparsify(raw, n, k, opt, copt);
  std::printf("coordinator: assembled %d-vertex bank from %d chunk streams, %d forest(s), "
              "%d copies used\n",
              n, workers, static_cast<int>(remote.forests.size()), remote.copies_used);

  bool children_ok = true;
  for (int w = 0; w < workers; ++w) {
    int status = 0;
    if (wait(&status) < 0 || !WIFEXITED(status) || WEXITSTATUS(status) != 0) children_ok = false;
  }
  std::printf("worker processes exited cleanly: %s\n", children_ok ? "yes" : "NO");

  const bool cert_ok = remote.certificate.num_edges() <= k * (n - 1) &&
                       is_k_edge_connected(remote.certificate, k);
  std::printf("certificate: %d edges (bound %d), %d-edge-connected: %s\n",
              remote.certificate.num_edges(), k * (n - 1), k, cert_ok ? "yes" : "NO");

  // The acceptance bar: the multi-process flow must equal single-process
  // sharded ingestion (and therefore sequential ingestion) edge for edge.
  ShardOptions sh;
  sh.shards = workers;
  const SparsifyResult local = sharded_sparsify_stream(stream, k, opt, sh);
  bool identical = local.certificate.num_edges() == remote.certificate.num_edges();
  if (identical)
    for (const Edge& e : local.certificate.edges())
      identical = identical && remote.certificate.has_edge(e.u, e.v);
  std::printf("identical to single-process sharded_sparsify_stream: %s\n",
              identical ? "yes" : "NO");

  // The CONGEST pipeline runs on the sparsifier.
  Network cert_net(remote.certificate);
  KecssOptions kopt;
  kopt.seed = 42;
  const KecssResult result = distributed_kecss(cert_net, k, kopt);
  const bool out_ok = is_k_edge_connected_subset(remote.certificate, result.edges, k);
  std::printf("k-ECSS on certificate: %zu edges in %llu rounds, %s\n", result.edges.size(),
              static_cast<unsigned long long>(cert_net.rounds()),
              out_ok ? "verified" : "NOT k-edge-connected");

  // Finale: the 2-ECSS pipeline on the certificate, executed by the
  // DistributedEngine over a second fleet of forked worker processes — each
  // owns a contiguous vertex range and exchanges boundary messages through
  // the coordinator's per-round barrier over TCP.
  Network seq_net(remote.certificate);
  const Ecss2Result seq2 = distributed_2ecss(seq_net, TapOptions{});

  TcpListener congest_listener;
  const int congest_workers = 4;
  for (int w = 0; w < congest_workers; ++w) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      try {
        const std::unique_ptr<Transport> t = tcp_connect("127.0.0.1", congest_listener.port());
        WorkerOptions wopt;
        if (w == kill_worker) {
          wopt.kill_after_rounds = kill_round;
          wopt.hard_kill = true;  // a real SIGKILL, not a polite close
        }
        run_congest_worker(*t, wopt);
        _exit(0);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "congest worker %d: %s\n", w, e.what());
        _exit(1);
      }
    }
  }
  std::vector<std::unique_ptr<Transport>> congest_accepted;
  std::vector<Transport*> congest_raw;
  for (int w = 0; w < congest_workers; ++w) {
    congest_accepted.push_back(congest_listener.accept());
    congest_raw.push_back(congest_accepted.back().get());
  }
  bool engine_identical = false;
  {
    // Checkpoint every 4 rounds so a SIGKILLed worker's ranges resume from
    // a bounded replay instead of round 1.
    DistributedHubOptions hub_opts;
    hub_opts.checkpoint_interval = 4;
    const std::shared_ptr<DistributedEngineHub> hub =
        make_distributed_hub(congest_raw, hub_opts);
    std::uint64_t net_rounds = 0, net_messages = 0;
    std::vector<EdgeId> net_edges;
    {
      Network dist_net(remote.certificate, hub);
      const Ecss2Result dist2 = distributed_2ecss(dist_net, TapOptions{});
      net_rounds = dist_net.rounds();
      net_messages = dist_net.messages();
      net_edges = dist2.edges;
    }
    hub->shutdown();
    engine_identical = net_edges == seq2.edges && net_rounds == seq_net.rounds() &&
                       net_messages == seq_net.messages();
    std::printf("2-ECSS over %d congest worker processes%s: %zu edges in %llu rounds — "
                "identical to the sequential engine: %s\n",
                congest_workers, kill_worker >= 0 ? " (one SIGKILLed mid-phase)" : "",
                net_edges.size(), static_cast<unsigned long long>(net_rounds),
                engine_identical ? "yes" : "NO");
  }
  // With --kill-worker, exactly one child must have died of SIGKILL; every
  // other child exits cleanly.
  int clean_children = 0, sigkilled_children = 0;
  for (int w = 0; w < congest_workers; ++w) {
    int status = 0;
    if (wait(&status) < 0) continue;
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) ++clean_children;
    if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) ++sigkilled_children;
  }
  const int want_killed = kill_worker >= 0 ? 1 : 0;
  const bool congest_children_ok =
      clean_children == congest_workers - want_killed && sigkilled_children == want_killed;
  std::printf("congest worker processes: %d exited cleanly, %d SIGKILLed (wanted %d): %s\n",
              clean_children, sigkilled_children, want_killed,
              congest_children_ok ? "ok" : "NOT ok");

  // With tracing on, drain the merged timeline (coordinator spans plus the
  // worker spans shipped back as kTraceData) into one chrome://tracing
  // file, and verify the cross-process parenting: every forked worker's
  // execution span must hang under a coordinator net.execute span.
  bool trace_ok = true;
  if (tracing) {
    const std::vector<obs::TraceEvent> events = obs::TraceSink::global().drain();
    std::set<std::uint64_t> exec_spans;
    for (const obs::TraceEvent& ev : events)
      if (ev.pid == 0 && ev.name == "net.execute") exec_spans.insert(ev.span_id);
    std::set<std::uint32_t> worker_pids;
    std::size_t worker_execs = 0, orphans = 0;
    for (const obs::TraceEvent& ev : events) {
      if (ev.pid == 0 || ev.name != "worker.execute") continue;
      ++worker_execs;
      worker_pids.insert(ev.pid);
      if (exec_spans.count(ev.parent_id) == 0) ++orphans;
    }
    // A SIGKILLed worker may die before shipping any trace frame, so its
    // lane is allowed to be missing from the merged timeline.
    trace_ok = worker_pids.size() >= static_cast<std::size_t>(congest_workers - want_killed) &&
               orphans == 0 && worker_execs > 0;
    std::printf("trace: %zu events, %zu worker execution span(s) across %zu worker lane(s), "
                "all parented under coordinator phases: %s\n",
                events.size(), worker_execs, worker_pids.size(),
                trace_ok && orphans == 0 ? "yes" : "NO");
    const std::string json = obs::chrome_trace_json(events);
    std::FILE* f = std::fopen(trace_out.c_str(), "w");
    if (f == nullptr || std::fwrite(json.data(), 1, json.size(), f) != json.size()) {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_out.c_str());
      trace_ok = false;
    }
    if (f != nullptr) std::fclose(f);
    if (trace_ok) std::printf("trace written to %s\n", trace_out.c_str());

    const obs::Snapshot snap = obs::Registry::global().scrape();
    std::printf("metrics: sketch.updates=%llu net.tx.frames=%llu congest.net.rounds=%llu\n",
                static_cast<unsigned long long>(snap.counter("sketch.updates")),
                static_cast<unsigned long long>(snap.counter("net.tx.frames")),
                static_cast<unsigned long long>(snap.counter("congest.net.rounds")));
  }

  return (children_ok && cert_ok && identical && out_ok && engine_identical &&
          congest_children_ok && trace_ok)
             ? 0
             : 1;
}
