// Streaming front-end: ingest a dynamic edge stream (insertions *and*
// deletions), recover a Thurimella sparse certificate from ℓ₀ sketches, and
// run the paper's CONGEST k-ECSS on the O(kn)-edge sparsifier instead of
// the raw graph.
//
//   cmake -B build -G Ninja && cmake --build build && ./build/streaming_sparsify

#include <cstdio>

#include "congest/network.hpp"
#include "ecss/distributed_2ecss.hpp"
#include "ecss/distributed_kecss.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "sketch/sketch_connectivity.hpp"
#include "sketch/stream.hpp"
#include "support/rng.hpp"

int main() {
  using namespace deck;
  const int n = 96, k = 3;

  // 1. A k-edge-connected graph arrives as a shuffled stream of insertions
  //    with transient churn edges (inserted, later deleted) mixed in — the
  //    net graph is exactly g, but the front-end only ever sees updates.
  Rng rng(7);
  Graph g = random_kec(n, k, /*extra=*/2 * n, rng);
  GraphStream stream = GraphStream::from_graph(g, rng);
  stream.churn(/*pairs=*/g.num_edges(), rng);
  std::printf("stream: %zu updates (%d net edges, %d churn pairs) over n=%d\n", stream.size(),
              g.num_edges(), g.num_edges(), n);

  // 2. Sketch-and-peel: per-vertex ℓ₀ sketches ingest the stream in
  //    batches; Borůvka on merged sketches peels k edge-disjoint spanning
  //    forests — a Thurimella certificate recovered without storing edges.
  //    Adaptive sizing starts from a small bank and grows only on observed
  //    sampler failures; recovery itself fans supernode aggregation out
  //    over 4 threads (bit-identical to 1 thread for this seed).
  SketchOptions opt;
  opt.seed = 42;
  opt.auto_size.enabled = true;
  const SparsifyResult sp = sparsify_stream(stream, k, opt, {.threads = 4});
  std::printf("certificate: %d edges (bound k(n-1) = %d), %d sketch copies used\n",
              sp.certificate.num_edges(), k * (n - 1), sp.copies_used);
  std::printf("auto-sizing: %d attempt(s), settled on columns=%d rounds_slack=%d "
              "(%lld samples, %lld failed)\n",
              sp.attempts, sp.columns_used, sp.rounds_slack_used, sp.stats.samples,
              sp.stats.failures);
  const bool cert_ok = is_k_edge_connected(sp.certificate, k);
  std::printf("certificate %d-edge-connected: %s\n", k, cert_ok ? "yes" : "NO");

  // 3. The expensive CONGEST pipeline runs on the sparsifier. Any k-ECSS of
  //    the certificate is a k-ECSS of the streamed graph, because the
  //    certificate preserves all cuts up to size k.
  Network raw_net(g);
  KecssOptions kopt;
  kopt.seed = 42;
  const KecssResult raw = distributed_kecss(raw_net, k, kopt);
  Network cert_net(sp.certificate);
  const KecssResult sparsified = distributed_kecss(cert_net, k, kopt);
  const bool out_ok = is_k_edge_connected_subset(sp.certificate, sparsified.edges, k);
  std::printf("k-ECSS rounds: raw %llu (m=%d) vs sparsified %llu (m=%d), output %zu edges, %s\n",
              static_cast<unsigned long long>(raw_net.rounds()), g.num_edges(),
              static_cast<unsigned long long>(cert_net.rounds()), sp.certificate.num_edges(),
              sparsified.edges.size(), out_ok ? "verified" : "NOT k-edge-connected");

  // 4. The same front-end feeds the 2-ECSS pipeline: a k >= 2 certificate
  //    is 2-edge-connected, so Theorem 1.1 machinery runs unchanged.
  Network two_net(sp.certificate);
  const Ecss2Result two = distributed_2ecss(two_net, TapOptions{});
  const bool two_ok = is_k_edge_connected_subset(sp.certificate, two.edges, 2);
  std::printf("2-ECSS on certificate: %zu edges in %llu rounds, %s\n", two.edges.size(),
              static_cast<unsigned long long>(two_net.rounds()),
              two_ok ? "verified" : "NOT 2-edge-connected");

  return (cert_ok && out_ok && two_ok) ? 0 : 1;
}
