// Fault-tolerant upgrade: augment an existing tree network (weighted TAP).
//
// Scenario: an operator already runs a spanning-tree network (it was the
// MST when the network was built) and wants to survive one link failure by
// leasing the cheapest set of additional links — exactly the weighted Tree
// Augmentation Problem of §3. We run the distributed TAP and compare with
// the sequential greedy and (on this small instance) the exact optimum.

#include <cstdio>

#include "congest/network.hpp"
#include "ecss/distributed_2ecss.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"
#include "tap/seq_tap.hpp"
#include "tap/tap_instance.hpp"

int main() {
  using namespace deck;
  Rng rng(11);

  // 14 sites; the operator's tree plus 12 candidate leased links.
  TapInstance inst = random_tap_instance(/*n=*/14, /*extra=*/6, /*weight model=*/1, rng);
  std::printf("network: %s, tree edges: %zu, candidate links: %zu\n", inst.g.summary().c_str(),
              inst.tree_edges.size(), inst.links().size());

  Network net(inst.g);
  TapOptions opt;
  opt.seed = 3;
  const TapResult dist = distributed_tap_standalone(net, inst, opt);
  const auto greedy = greedy_tap(inst);
  const auto exact = exact_tap(inst);

  std::printf("\ndistributed TAP : weight %lld, %zu links, %d iterations, %llu rounds\n",
              static_cast<long long>(dist.weight), dist.augmentation.size(), dist.iterations,
              static_cast<unsigned long long>(net.rounds()));
  std::printf("sequential greedy: weight %lld, %zu links\n",
              static_cast<long long>(inst.weight_of(greedy)), greedy.size());
  std::printf("exact optimum    : weight %lld, %zu links\n",
              static_cast<long long>(inst.weight_of(exact)), exact.size());

  if (!inst.covers_all(dist.augmentation)) {
    std::printf("distributed augmentation does not cover the tree!\n");
    return 1;
  }
  std::printf("\nchosen links (distributed): ");
  for (EdgeId e : dist.augmentation)
    std::printf("(%d-%d w=%lld) ", inst.g.edge(e).u, inst.g.edge(e).v,
                static_cast<long long>(inst.g.edge(e).w));
  std::printf("\nresult verified: tree + augmentation is 2-edge-connected.\n");
  return 0;
}
