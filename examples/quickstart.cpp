// Quickstart: build a weighted network, run the distributed 2-ECSS
// (Theorem 1.1), and inspect the result.
//
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "congest/network.hpp"
#include "ecss/distributed_2ecss.hpp"
#include "ecss/lower_bounds.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

int main() {
  using namespace deck;

  // 1. A 2-edge-connected communication network with uniform random weights.
  Rng rng(7);
  Graph g = with_weights(random_kec(/*n=*/96, /*k=*/2, /*extra=*/96, rng),
                         WeightModel::kUniform, rng);
  std::printf("input: %s, diameter-bounded CONGEST network\n", g.summary().c_str());

  // 2. The Network wraps the graph as the CONGEST communication medium and
  //    counts rounds/messages of everything run on it.
  Network net(g);

  // 3. Run the paper's 2-ECSS: distributed MST + segment decomposition +
  //    distributed weighted TAP.
  const Ecss2Result result = distributed_2ecss(net, TapOptions{});

  // 4. Verify and report.
  const bool ok = is_k_edge_connected_subset(g, result.edges, 2);
  const Weight lb = kecss_lower_bound(g, 2);
  std::printf("2-ECSS: %zu edges, weight %lld (lower bound %lld, ratio %.2f)\n",
              result.edges.size(), static_cast<long long>(result.weight),
              static_cast<long long>(lb),
              static_cast<double>(result.weight) / static_cast<double>(lb));
  std::printf("verified 2-edge-connected: %s\n", ok ? "yes" : "NO");
  std::printf("CONGEST cost: %llu rounds, %llu messages, %d TAP iterations\n",
              static_cast<unsigned long long>(net.rounds()),
              static_cast<unsigned long long>(net.messages()), result.tap_iterations);
  std::printf("decomposition: %d segments, max segment diameter %d\n", result.num_segments,
              result.max_segment_diameter);
  return ok ? 0 : 1;
}
