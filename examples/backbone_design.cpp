// Backbone design: provision a fault-tolerant wide-area backbone.
//
// Scenario (the paper's §1 motivation): a WAN of regional clusters joined
// by long-haul links of varying lease cost. A single backbone tree dies
// with any one link; we provision k-edge-connected backbones for k = 1..3
// with the distributed k-ECSS algorithm (Theorem 1.2) and compare the cost
// of each resilience level against the lower bound.

#include <cstdio>

#include "congest/network.hpp"
#include "ecss/distributed_kecss.hpp"
#include "ecss/lower_bounds.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using namespace deck;
  Rng rng(2026);

  // A ring of 6 regional clusters (5 routers each), 3 leased cross-links
  // between neighbouring regions; intra-region links are cheap, long-haul
  // links expensive.
  Graph topo = ring_of_cliques(/*cliques=*/6, /*size=*/5, /*links=*/3, rng);
  Graph wan(topo.num_vertices());
  for (const Edge& e : topo.edges()) {
    const bool intra = e.u / 5 == e.v / 5;
    const Weight cost = intra ? 1 + static_cast<Weight>(rng.next_below(4))
                              : 20 + static_cast<Weight>(rng.next_below(30));
    wan.add_edge(e.u, e.v, cost);
  }
  std::printf("WAN: %s, edge connectivity %d\n", wan.summary().c_str(), edge_connectivity(wan));

  Table t({"k (survives k-1 failures)", "links", "cost", "lower bound", "cost/LB", "rounds"});
  for (int k = 1; k <= 3; ++k) {
    Network net(wan);
    KecssOptions opt;
    opt.seed = 17 * k;
    const KecssResult r = distributed_kecss(net, k, opt);
    if (!is_k_edge_connected_subset(wan, r.edges, k)) {
      std::printf("backbone for k=%d failed verification!\n", k);
      return 1;
    }
    const Weight lb = kecss_lower_bound(wan, k);
    t.add(k, static_cast<int>(r.edges.size()), r.weight, lb,
          static_cast<double>(r.weight) / static_cast<double>(lb), net.rounds());
  }
  t.print("Backbone provisioning cost by resilience level");
  std::printf("Each row is verified k-edge-connected via max-flow.\n");
  return 0;
}
