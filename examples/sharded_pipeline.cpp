// Sharded distributed ingestion, end to end: the update stream is split
// across four simulated ingest machines, each machine sketches its slice
// into a private ℓ₀ bank, serializes the bank (sketch_io wire format), and
// "ships" the bytes to a coordinator that decodes, merges by sketch
// addition, and recovers the Thurimella certificate — which then feeds the
// paper's CONGEST k-ECSS exactly as in examples/streaming_sparsify.
//
//   stream slices        ingest machines            coordinator
//   ────────────         ──────────────             ───────────
//   updates[0::4] ──►  bank₀ ──encode──► bytes ──►  decode ─┐
//   updates[1::4] ──►  bank₁ ──encode──► bytes ──►  decode ─┼─ merge(+) ─► recover
//   ...                                                     │
//
//   cmake -B build -G Ninja && cmake --build build && ./build/sharded_pipeline

#include <cstdio>
#include <vector>

#include "congest/network.hpp"
#include "ecss/distributed_kecss.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "sketch/shard.hpp"
#include "sketch/sketch_io.hpp"
#include "sketch/stream.hpp"
#include "support/rng.hpp"

int main() {
  using namespace deck;
  const int n = 96, k = 3, machines = 4;

  // A k-edge-connected graph arrives as a churned dynamic stream.
  Rng rng(19);
  Graph g = random_kec(n, k, /*extra=*/2 * n, rng);
  GraphStream stream = GraphStream::from_graph(g, rng);
  stream.churn(/*pairs=*/g.num_edges(), rng);
  std::printf("stream: %zu updates over n=%d, sliced across %d ingest machines\n", stream.size(), n,
              machines);

  SketchOptions opt;
  opt.seed = 42;
  opt.max_forests = k;

  // 1. Each "machine" sees only every machines-th update (an arbitrary
  //    partition — linearity makes any split equivalent) and sketches it
  //    into a private bank. Banks agree on per-copy seeds because every
  //    machine splits them deterministically from opt.seed — no shared
  //    state, no coordination.
  std::vector<std::vector<std::uint8_t>> shipped;
  for (int m = 0; m < machines; ++m) {
    SketchConnectivity bank(n, opt);
    std::size_t i = 0;
    for (const StreamUpdate& u : stream.updates())
      if (static_cast<int>(i++ % machines) == m) bank.update(u.u, u.v, u.insert ? 1 : -1);
    shipped.push_back(encode_bank(bank));  // 2. serialize and ship
  }
  std::printf("shipped: %d banks, %zu bytes each (endian-stable, checksummed)\n", machines,
              shipped[0].size());

  // 3. The coordinator decodes and folds the shipped banks by sketch
  //    addition — arrival order is irrelevant (merge is associative and
  //    commutative) — then peels the k forests.
  SketchConnectivity global = decode_bank(shipped[0]);
  for (int m = 1; m < machines; ++m) merge_encoded(global, shipped[m]);
  const auto forests = global.k_spanning_forests(k);
  Graph cert(n);
  for (const auto& forest : forests)
    for (const SketchEdge& e : forest) cert.add_edge(e.u, e.v, /*w=*/1);
  const bool cert_ok = cert.num_edges() <= k * (n - 1) && is_k_edge_connected(cert, k);
  std::printf("certificate: %d edges (bound %d), %d-edge-connected: %s\n", cert.num_edges(),
              k * (n - 1), k, cert_ok ? "yes" : "NO");

  // Sanity: the distributed flow must equal the in-process sharded flow
  // (and therefore the sequential one) edge for edge.
  ShardOptions sh;
  sh.shards = machines;
  const SparsifyResult local = sharded_sparsify_stream(stream, k, opt, sh);
  bool identical = local.certificate.num_edges() == cert.num_edges();
  if (identical)
    for (const Edge& e : local.certificate.edges())
      identical = identical && cert.has_edge(e.u, e.v);
  std::printf("identical to in-process sharded ingestion: %s\n", identical ? "yes" : "NO");

  // 4. The CONGEST pipeline runs on the sparsifier.
  Network cert_net(cert);
  KecssOptions kopt;
  kopt.seed = 42;
  const KecssResult result = distributed_kecss(cert_net, k, kopt);
  const bool out_ok = is_k_edge_connected_subset(cert, result.edges, k);
  std::printf("k-ECSS on certificate: %zu edges in %llu rounds, %s\n", result.edges.size(),
              static_cast<unsigned long long>(cert_net.rounds()),
              out_ok ? "verified" : "NOT k-edge-connected");

  return (cert_ok && identical && out_ok) ? 0 : 1;
}
