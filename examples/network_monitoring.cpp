// Network monitoring: continuous resilience checks and failover planning.
//
// Scenario: an operator monitors a live network. Each monitoring sweep
// (a) verifies 2-/3-edge-connectivity in O(D) rounds with cycle-space
// labels (§5.1 / Pritchard–Thurimella), and (b) precomputes the MST swap
// edge for every backbone link (the FT-MST structure behind §3.2), so a
// failover plan is ready before any failure happens.

#include <cstdio>

#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "cycles/verify.hpp"
#include "decomp/segments.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "mst/distributed_mst.hpp"
#include "support/rng.hpp"
#include "tap/distributed_tap.hpp"

int main() {
  using namespace deck;
  Rng rng(31);
  Graph g = with_weights(random_kec(40, 3, 50, rng), WeightModel::kUniform, rng);
  std::printf("monitored network: %s\n\n", g.summary().c_str());

  // (a) Resilience verification sweeps, O(D) each.
  {
    Network net(g);
    const VerifyResult r2 = verify_2_edge_connected(net, 1);
    std::printf("2-edge-connected: %s (%llu rounds)\n", r2.is_k_connected ? "yes" : "NO",
                static_cast<unsigned long long>(net.rounds()));
    Network net3(g);
    const VerifyResult r3 = verify_3_edge_connected(net3, 2);
    std::printf("3-edge-connected: %s (%llu rounds)\n", r3.is_k_connected ? "yes" : "NO",
                static_cast<unsigned long long>(net3.rounds()));
    if (!r3.is_k_connected && r3.witness.size() == 2) {
      std::printf("  weak spot: links %d-%d and %d-%d form a cut pair\n",
                  g.edge(r3.witness[0]).u, g.edge(r3.witness[0]).v, g.edge(r3.witness[1]).u,
                  g.edge(r3.witness[1]).v);
    }
  }

  // (b) Failover plan: swap edge per backbone (MST) link.
  {
    Network net(g);
    RootedTree bfs = distributed_bfs(net, 0);
    MstResult mst = distributed_mst(net, bfs);
    const CommForest forest = CommForest::from_tree(bfs);
    SegmentDecomposition dec(net, mst.tree, mst.fragment, mst.global_edges, forest, 0);
    const std::uint64_t before = net.rounds();
    const auto swaps = mst_replacement_edges(net, dec, forest, 0);
    std::printf("\nfailover plan computed in %llu rounds (backbone of %zu links):\n",
                static_cast<unsigned long long>(net.rounds() - before), mst.mst_edges.size());
    int shown = 0;
    for (EdgeId t : mst.mst_edges) {
      if (shown++ >= 6) break;
      const EdgeId s = swaps[static_cast<std::size_t>(t)];
      std::printf("  if %d-%d (w=%lld) fails -> activate %d-%d (w=%lld)\n", g.edge(t).u,
                  g.edge(t).v, static_cast<long long>(g.edge(t).w), g.edge(s).u, g.edge(s).v,
                  static_cast<long long>(g.edge(s).w));
    }
    std::printf("  ... (%zu more)\n", mst.mst_edges.size() - 6);

    // Export the backbone for dashboards.
    const std::string dot = to_dot(g, mst.mst_edges);
    std::printf("\nDOT export of the backbone: %zu bytes (pipe to `dot -Tpng`)\n", dot.size());
  }
  return 0;
}
