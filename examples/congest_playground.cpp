// CONGEST playground: a tour of the simulator substrate — BFS flooding,
// pipelined aggregation, distributed MST, cycle-space labels — with round
// and message counts for each primitive. Useful as a template for building
// new distributed algorithms on top of deck.

#include <cstdio>

#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "cycles/cycle_space.hpp"
#include "ecss/unweighted_2ecss.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "mst/distributed_mst.hpp"
#include "support/rng.hpp"

int main() {
  using namespace deck;
  Rng rng(1);
  Graph g = with_weights(torus(8, 12), WeightModel::kUniform, rng);
  std::printf("network: %s, diameter %d\n\n", g.summary().c_str(), diameter(g));

  Network net(g);
  auto report = [&](const char* what, std::uint64_t r0, std::uint64_t m0) {
    std::printf("%-28s rounds +%llu, messages +%llu\n", what,
                static_cast<unsigned long long>(net.rounds() - r0),
                static_cast<unsigned long long>(net.messages() - m0));
  };

  // 1. BFS tree by flooding: O(D) rounds.
  std::uint64_t r0 = net.rounds(), m0 = net.messages();
  RootedTree bfs = distributed_bfs(net, 0);
  report("BFS flooding", r0, m0);
  const CommForest forest = CommForest::from_tree(bfs);

  // 2. Aggregate: total weight via convergecast, O(D).
  r0 = net.rounds();
  m0 = net.messages();
  std::vector<std::uint64_t> deg(static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) deg[static_cast<std::size_t>(v)] = g.degree(v);
  auto acc = convergecast(net, forest, deg, CombineOp::kSum);
  report("degree-sum convergecast", r0, m0);
  std::printf("   root learned sum of degrees = %llu (= 2m = %d)\n",
              static_cast<unsigned long long>(acc[0]), 2 * g.num_edges());

  // 3. Pipelined keyed upcast: min-weight edge per residue class.
  r0 = net.rounds();
  m0 = net.messages();
  std::vector<std::vector<KeyedItem>> items(static_cast<std::size_t>(g.num_vertices()));
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    items[static_cast<std::size_t>(g.edge(e).u)].push_back(
        KeyedItem{static_cast<std::uint64_t>(e % 8), static_cast<std::uint64_t>(g.edge(e).w),
                  static_cast<std::uint64_t>(e)});
  keyed_min_upcast(net, forest, std::move(items));
  report("keyed min upcast (8 keys)", r0, m0);

  // 4. Distributed MST (controlled-GHS + pipelined merge).
  r0 = net.rounds();
  m0 = net.messages();
  MstResult mst = distributed_mst(net, bfs);
  report("distributed MST", r0, m0);
  std::printf("   MST: %zu edges, %d fragments (max height %d)\n", mst.mst_edges.size(),
              mst.num_fragments, mst.max_fragment_height);

  // 5. Cycle-space labels of a 2-edge-connected subgraph (Lemma 5.5).
  r0 = net.rounds();
  m0 = net.messages();
  auto base = unweighted_2ecss_2approx(net, 0);
  report("unweighted 2-ECSS 2-approx", r0, m0);
  r0 = net.rounds();
  m0 = net.messages();
  std::vector<char> mask(static_cast<std::size_t>(g.num_edges()), 0);
  for (EdgeId e : base.edges) mask[static_cast<std::size_t>(e)] = 1;
  Rng lrng(5);
  auto labels = sample_circulation_distributed(net, mask, base.bfs, 64, lrng);
  report("cycle-space labels", r0, m0);
  const auto pairs = label_cut_pairs(g, mask, labels);
  std::printf("   cut pairs detected in the 2-ECSS base: %zu\n", pairs.size());

  std::printf("\ntotal: %llu rounds, %llu messages\n",
              static_cast<unsigned long long>(net.rounds()),
              static_cast<unsigned long long>(net.messages()));
  return 0;
}
